package console

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/xrand"
)

// TestReadMsgSurvivesGarbage hammers the frame reader with random
// bytes: it must return errors, never panic, and never allocate an
// unbounded buffer.
func TestReadMsgSurvivesGarbage(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		// Clamp the length prefix occasionally so the body read path
		// is exercised too.
		if n >= 5 && rng.Intn(2) == 0 {
			buf[0] = byte(rng.Intn(16))
			buf[1], buf[2], buf[3] = 0, 0, 0
		}
		_, _, _ = ReadMsg(bytes.NewReader(buf))
	}
}

// TestServerSurvivesGarbageConnections connects raw sockets that
// write random bytes and vanish; the server must keep serving
// legitimate agents afterwards.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	rng := xrand.New(11)
	for trial := 0; trial < 20; trial++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(200)
		junk := make([]byte, n)
		for i := range junk {
			junk[i] = byte(rng.Intn(256))
		}
		_, _ = conn.Write(junk)
		_ = conn.Close()
	}
	// A legitimate agent still gets through.
	a, err := Dial(addr, 42, "survivor")
	if err != nil {
		t.Fatalf("legitimate agent rejected after garbage: %v", err)
	}
	defer a.Close()
	if err := a.UploadDistribution(0, []float64{1, 2, 3}); err != nil {
		t.Fatalf("upload after garbage: %v", err)
	}
}

// TestFrameStreamThroughFaults drives WriteMsg frames through a
// seeded lossy transport: because WriteMsg emits each frame as one
// write and a FaultConn delivers a strict prefix of the written
// stream, the receiver must decode an exact prefix of the sent frame
// sequence and then fail cleanly — never a torn or corrupted frame.
func TestFrameStreamThroughFaults(t *testing.T) {
	type frame struct {
		typ  MsgType
		body []byte
	}
	plans := []netsim.FaultPlan{
		{Seed: 21, DropProb: 0.25},
		{Seed: 22, ResetProb: 0.25},
		{Seed: 23, DropProb: 0.15, ResetProb: 0.15},
	}
	for pi, plan := range plans {
		mem := netsim.NewMemNetwork()
		ln, err := mem.Listen("sink")
		if err != nil {
			t.Fatal(err)
		}
		fnet, err := netsim.NewFaultNetwork(mem, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(uint64(500 + pi))
		for trial := 0; trial < 20; trial++ {
			// Accept concurrently: MemNetwork.Dial hands the server end
			// over synchronously.
			acceptCh := make(chan net.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					c = nil
				}
				acceptCh <- c
			}()
			conn, err := fnet.Dial(0, "sink")
			if err != nil {
				t.Fatal(err)
			}
			peer := <-acceptCh
			if peer == nil {
				t.Fatal("accept failed")
			}
			recvCh := make(chan []frame, 1)
			go func() {
				var got []frame
				for {
					typ, body, err := ReadMsg(peer)
					if err != nil {
						recvCh <- got
						return
					}
					got = append(got, frame{typ, body})
				}
			}()
			var sent []frame
			for w := 0; w < 30; w++ {
				var (
					typ     MsgType
					payload any
				)
				switch rng.Intn(3) {
				case 0:
					typ = MsgPing
					payload = Ping{HostID: uint32(rng.Intn(64))}
				case 1:
					typ = MsgAlertBatch
					alerts := make([]Alert, rng.Intn(5))
					for i := range alerts {
						alerts[i] = Alert{Feature: rng.Intn(6), Bin: rng.Intn(100), Value: rng.Float64()}
					}
					payload = AlertBatch{HostID: 3, Seq: uint64(w + 1), Alerts: alerts}
				default:
					typ = MsgDistUpload
					samples := make([]float64, 1+rng.Intn(20))
					for i := range samples {
						samples[i] = rng.Float64()
					}
					payload = DistUpload{HostID: 3, Feature: rng.Intn(6), Samples: samples}
				}
				body, err := json.Marshal(payload)
				if err != nil {
					t.Fatal(err)
				}
				sent = append(sent, frame{typ, body})
				if err := WriteMsg(conn, typ, payload); err != nil {
					// The frame errored mid-transport; it may have been
					// partially delivered, so it cannot count as sent
					// in full — but a FaultConn reset only delivers a
					// prefix, which ReadMsg rejects, so the receiver
					// sees at most the frames before it.
					sent = sent[:len(sent)-1]
					break
				}
			}
			_ = conn.Close()
			got := <-recvCh
			_ = peer.Close()
			// A dropped write is swallowed whole (reported as sent), so
			// the receiver may trail the sender — but only as an exact
			// frame-sequence prefix.
			if len(got) > len(sent)+1 {
				t.Fatalf("plan %d trial %d: received %d frames, sent %d", pi, trial, len(got), len(sent))
			}
			for i, f := range got {
				if i >= len(sent) {
					// The last write errored after full delivery is
					// impossible: resets deliver strict prefixes and
					// ReadMsg cannot decode a torn frame. Anything here
					// is a violation.
					t.Fatalf("plan %d trial %d: received frame %d beyond the %d cleanly sent",
						pi, trial, i, len(sent))
				}
				if f.typ != sent[i].typ || !bytes.Equal(f.body, sent[i].body) {
					t.Fatalf("plan %d trial %d: frame %d differs from the frame sent (got %s, want %s)",
						pi, trial, i, f.typ, sent[i].typ)
				}
			}
		}
		_ = ln.Close()
	}
}

// TestServerSurvivesSlowHello verifies a stalled half-open connection
// does not wedge the accept loop.
func TestServerSurvivesSlowHello(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close() // never sends a byte

	done := make(chan error, 1)
	go func() {
		a, err := Dial(addr, 7, "prompt")
		if err == nil {
			_ = a.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("prompt agent failed behind a stalled peer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("accept loop wedged by a stalled connection")
	}
}
