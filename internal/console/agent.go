package console

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/xrand"
)

// RetryPolicy budgets the agent's self-healing behavior: how often it
// redials a lost console connection, how long it backs off between
// attempts, and how many times an acknowledged operation is retried
// across link failures. Zero values select the defaults noted on each
// field, so the zero RetryPolicy is a sane production posture.
type RetryPolicy struct {
	// MaxDials caps redial attempts per link loss; once exhausted the
	// agent is permanently dead (ErrAgentDead). 0 means 8; negative
	// means unlimited — the fleet simulator uses unlimited because its
	// fault plans, not a dial budget, decide which hosts stay down.
	MaxDials int
	// MaxOpRetries caps how many times one acknowledged operation
	// (upload, alert batch) is attempted across link failures. 0 means 4.
	MaxOpRetries int
	// Backoff is the base redial backoff; attempt n sleeps roughly
	// Backoff<<(n-1) with seeded jitter. 0 means 50ms.
	Backoff time.Duration
	// BackoffMax caps the exponential growth. 0 means 2s.
	BackoffMax time.Duration
	// LinkWait bounds how long one operation attempt waits for a live
	// connection before counting a failed try. 0 means 2×BackoffMax.
	LinkWait time.Duration
	// Seed drives the jitter stream; combined with the host ID so a
	// fleet of agents sharing one policy still jitters independently.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxDials == 0 {
		p.MaxDials = 8
	}
	if p.MaxOpRetries <= 0 {
		p.MaxOpRetries = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.BackoffMax < p.Backoff {
		p.BackoffMax = p.Backoff
	}
	if p.LinkWait <= 0 {
		p.LinkWait = 2 * p.BackoffMax
	}
	return p
}

// AgentConfig parameterizes Connect.
type AgentConfig struct {
	// HostID is the end-host identifier (stable across reconnects).
	HostID uint32
	// Hostname is informational.
	Hostname string
	// Conn, when set, is the initial established connection (tests use
	// net.Pipe). When nil, Dial is invoked for the first connection.
	Conn net.Conn
	// Dial, when set, re-establishes lost connections; without it the
	// agent is single-shot and a dead link permanently kills it.
	Dial func() (net.Conn, error)
	// Retry budgets redial and operation retries.
	Retry RetryPolicy
	// AckTimeout bounds each wait for a server acknowledgment
	// (default 10s).
	AckTimeout time.Duration
	// WriteTimeout, when positive, is applied as a write deadline to
	// every outbound frame so a wedged peer cannot block the agent
	// forever (default: none).
	WriteTimeout time.Duration
}

// Agent is the end-host side of the management plane: the behavioral
// HIDS process running on one laptop. It uploads the host's training
// distributions, receives the policy's thresholds, evaluates feature
// windows locally and batches alerts back to the console. When
// configured with a Dial function it self-heals: a lost connection is
// redialed with exponential backoff and seeded jitter, uploads are
// re-sent idempotently (the console's epoch guard drops stale
// retries) and alert batches carry sequence numbers so a re-flush
// after a lost ack is never double-counted.
type Agent struct {
	hostID       uint32
	hostname     string
	dial         func() (net.Conn, error)
	retry        RetryPolicy
	ackTimeout   time.Duration
	writeTimeout time.Duration

	mu         sync.Mutex
	notify     chan struct{} // closed+replaced on any state change
	link       *link
	thresholds *Thresholds
	pending    []Alert      // alerts not yet frozen into a batch
	spool      []AlertBatch // frozen batches awaiting acknowledgment
	nextSeq    uint64
	lastErr    error
	closed     bool
	dead       bool
	greeted    bool // a handshake by this incarnation has succeeded
	reconnects int
	rng        *xrand.Source

	thrCh       chan Thresholds
	managerDone chan struct{}
	closedCh    chan struct{}
}

// link is one console connection attempt's state: the conn, its ack
// stream and its failure latch. Retried operations never see acks
// from a previous connection because each link has a fresh ackCh.
type link struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	ackCh chan Ack
	done  chan struct{}
	once  sync.Once

	mu  sync.Mutex
	err error
}

// fail latches the link's failure cause, closes the conn and releases
// everyone waiting on done. First cause wins.
func (l *link) fail(err error) {
	l.once.Do(func() {
		l.mu.Lock()
		l.err = err
		l.mu.Unlock()
		_ = l.conn.Close()
		close(l.done)
	})
}

func (l *link) failure() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return errors.New("console: connection closed")
}

// ErrAgentClosed is returned for operations on a closed agent.
var ErrAgentClosed = errors.New("console: agent closed")

// ErrAgentDead is returned once the agent's connection is permanently
// lost: the redial budget is exhausted, or the link died and no Dial
// function was configured.
var ErrAgentDead = errors.New("console: agent connection permanently lost")

// ErrThresholdsTimeout is returned by WaitThresholds(Epoch) when the
// timeout expires before thresholds arrive. Callers that wait in
// slices (the fleet runner polls between slices for fleet-wide
// aborts) test for it to distinguish "not yet" from a dead agent.
var ErrThresholdsTimeout = errors.New("console: timeout waiting for thresholds")

// DefaultDialTimeout bounds Dial's TCP connection establishment.
const DefaultDialTimeout = 30 * time.Second

// Dial connects an agent to the console at addr over TCP (bounded by
// DefaultDialTimeout) and completes the hello handshake.
func Dial(addr string, hostID uint32, hostname string) (*Agent, error) {
	return DialTimeout(addr, hostID, hostname, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit connection-establishment bound.
func DialTimeout(addr string, hostID uint32, hostname string, timeout time.Duration) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("console: dialing %s: %w", addr, err)
	}
	return Connect(AgentConfig{HostID: hostID, Hostname: hostname, Conn: conn})
}

// NewAgent runs the agent protocol over an existing connection (the
// tests use net.Pipe). Without a Dial function the agent cannot
// self-heal: a dead link permanently kills it.
func NewAgent(conn net.Conn, hostID uint32, hostname string) (*Agent, error) {
	return Connect(AgentConfig{HostID: hostID, Hostname: hostname, Conn: conn})
}

// Connect establishes an agent per cfg and completes the hello
// handshake on the first connection.
func Connect(cfg AgentConfig) (*Agent, error) {
	if cfg.Conn == nil && cfg.Dial == nil {
		return nil, errors.New("console: AgentConfig needs Conn or Dial")
	}
	retry := cfg.Retry.withDefaults()
	a := &Agent{
		hostID:       cfg.HostID,
		hostname:     cfg.Hostname,
		dial:         cfg.Dial,
		retry:        retry,
		ackTimeout:   cfg.AckTimeout,
		writeTimeout: cfg.WriteTimeout,
		notify:       make(chan struct{}),
		rng:          xrand.New(retry.Seed ^ (uint64(cfg.HostID)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909)),
		thrCh:        make(chan Thresholds, 1),
		managerDone:  make(chan struct{}),
		closedCh:     make(chan struct{}),
	}
	if a.ackTimeout <= 0 {
		a.ackTimeout = 10 * time.Second
	}
	var l *link
	conn := cfg.Conn
	if conn != nil {
		var err error
		if l, err = a.handshake(conn, false); err != nil && a.dial == nil {
			return nil, err
		}
	}
	if l == nil {
		// No pre-established conn, or its handshake failed and a Dial
		// function exists: the first connection is a redial-budget
		// problem like any other — a chaos transport may well drop the
		// very first hello.
		var err error
		if l, err = a.redial(); err != nil {
			return nil, err
		}
	}
	a.link = l
	go a.manage(l)
	return a, nil
}

// handshake runs hello/ack on a fresh connection and returns its
// link. resume marks a redial by this same incarnation, telling the
// console to keep the host's alert-sequence dedup watermark.
func (a *Agent) handshake(conn net.Conn, resume bool) (*link, error) {
	l := &link{conn: conn, ackCh: make(chan Ack, 16), done: make(chan struct{})}
	go a.readLoop(l)
	if err := a.writeTo(l, MsgHello, Hello{HostID: a.hostID, Hostname: a.hostname, Resume: resume}); err != nil {
		l.fail(err)
		return nil, err
	}
	if _, err := a.waitAckOn(l, a.ackTimeout); err != nil {
		err = fmt.Errorf("console: hello not acknowledged: %w", err)
		l.fail(err)
		return nil, err
	}
	a.mu.Lock()
	a.greeted = true
	a.mu.Unlock()
	return l, nil
}

// writeTo frames and writes one message on l, under l's write lock and
// the configured write deadline.
func (a *Agent) writeTo(l *link, t MsgType, payload any) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if a.writeTimeout > 0 {
		_ = l.conn.SetWriteDeadline(time.Now().Add(a.writeTimeout))
		defer func() { _ = l.conn.SetWriteDeadline(time.Time{}) }()
	}
	return WriteMsg(l.conn, t, payload)
}

// readLoop dispatches inbound messages until l's connection dies.
func (a *Agent) readLoop(l *link) {
	for {
		t, body, err := ReadMsg(l.conn)
		if err != nil {
			l.fail(err)
			return
		}
		switch t {
		case MsgAck:
			var ack Ack
			if decode(t, body, &ack) == nil {
				select {
				case l.ackCh <- ack:
				default: // slow consumer; acks are advisory
				}
			}
		case MsgThresholds:
			var thr Thresholds
			if decode(t, body, &thr) == nil {
				a.mu.Lock()
				if a.thresholds == nil || thr.Epoch >= a.thresholds.Epoch {
					a.thresholds = &thr
				}
				a.wakeLocked()
				a.mu.Unlock()
				select {
				case a.thrCh <- thr:
				default:
				}
			}
		case MsgError:
			var pe ProtoError
			_ = decode(t, body, &pe)
			l.fail(fmt.Errorf("console: server error: %s", pe.Message))
			return
		default:
			l.fail(fmt.Errorf("console: unexpected server message %s", t))
			return
		}
	}
}

// wakeLocked signals every state waiter. Callers hold a.mu.
func (a *Agent) wakeLocked() {
	close(a.notify)
	a.notify = make(chan struct{})
}

// manage owns the agent's connection lifecycle: it waits for the
// current link to die, then either redials (when a Dial function is
// configured) or marks the agent permanently dead.
func (a *Agent) manage(l *link) {
	defer close(a.managerDone)
	for {
		<-l.done
		cause := l.failure()
		a.mu.Lock()
		if a.link == l {
			a.link = nil
			a.wakeLocked()
		}
		closed := a.closed
		a.mu.Unlock()
		if closed {
			return
		}
		if a.dial == nil {
			a.markDead(cause)
			return
		}
		nl, err := a.redial()
		if err != nil {
			a.markDead(err)
			return
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			nl.fail(ErrAgentClosed)
			return
		}
		a.link = nl
		a.reconnects++
		a.wakeLocked()
		a.mu.Unlock()
		l = nl
	}
}

// redial re-establishes the console connection with exponential
// backoff and seeded jitter, within the policy's dial budget.
func (a *Agent) redial() (*link, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		a.mu.Lock()
		closed := a.closed
		a.mu.Unlock()
		if closed {
			return nil, ErrAgentClosed
		}
		if a.retry.MaxDials > 0 && attempt >= a.retry.MaxDials {
			if lastErr == nil {
				lastErr = errors.New("console: no attempt made")
			}
			return nil, fmt.Errorf("console: redial budget (%d) exhausted: %w", a.retry.MaxDials, lastErr)
		}
		if attempt > 0 {
			select {
			case <-time.After(a.backoff(attempt)):
			case <-a.closedCh:
				return nil, ErrAgentClosed
			}
		}
		conn, err := a.dial()
		if err != nil {
			lastErr = err
			continue
		}
		// Resume only once a handshake by this incarnation has
		// succeeded: a new process restarting under an old host ID must
		// send a fresh hello so the console resets its dedup watermark —
		// otherwise the restart's alerts silently drop as "re-sent".
		a.mu.Lock()
		resume := a.greeted
		a.mu.Unlock()
		l, err := a.handshake(conn, resume)
		if err != nil {
			lastErr = err
			continue
		}
		return l, nil
	}
}

// backoff computes the sleep before redial attempt n (n ≥ 1):
// half of min(BackoffMax, Backoff<<(n-1)) plus seeded jitter up to
// the same half, so concurrent agents healing through one partition
// do not stampede the console in lockstep.
func (a *Agent) backoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	base := a.retry.Backoff << uint(shift)
	if base <= 0 || base > a.retry.BackoffMax {
		base = a.retry.BackoffMax
	}
	half := base / 2
	if half <= 0 {
		return base
	}
	a.mu.Lock()
	jitter := time.Duration(a.rng.Intn(int(half)))
	a.mu.Unlock()
	return half + jitter
}

// markDead latches the agent's permanent failure.
func (a *Agent) markDead(cause error) {
	a.mu.Lock()
	if !a.dead {
		a.dead = true
		if a.lastErr == nil {
			a.lastErr = cause
		}
		a.wakeLocked()
	}
	a.mu.Unlock()
}

// waitLink blocks until a live link is available, the agent dies, or
// the timeout expires. A link that has already failed but that the
// manager has not reaped yet counts as absent — returning it would
// burn the caller's retry budget on writes into a known-dead
// connection faster than the manager can heal it.
func (a *Agent) waitLink(timeout time.Duration) (*link, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		l, closed, dead, lastErr, notify := a.link, a.closed, a.dead, a.lastErr, a.notify
		a.mu.Unlock()
		if closed {
			return nil, ErrAgentClosed
		}
		if l != nil {
			select {
			case <-l.done:
				// Failed link awaiting reap; the manager will swap it out
				// and signal notify (captured under the same lock, so the
				// wakeup cannot be lost).
			default:
				return l, nil
			}
		} else if dead {
			if lastErr != nil {
				return nil, fmt.Errorf("%w: %v", ErrAgentDead, lastErr)
			}
			return nil, ErrAgentDead
		}
		select {
		case <-notify:
		case <-deadline.C:
			return nil, errors.New("console: no live connection")
		}
	}
}

func (a *Agent) waitAckOn(l *link, timeout time.Duration) (Ack, error) {
	select {
	case ack := <-l.ackCh:
		return ack, nil
	case <-l.done:
		return Ack{}, l.failure()
	case <-time.After(timeout):
		return Ack{}, errors.New("console: timeout waiting for ack")
	}
}

// rpc performs one acknowledged operation, retrying across link
// failures within the policy's budget. Any failure fails the current
// link (so the ack FIFO of a retried attempt is always fresh) and
// waits for the manager to heal it.
func (a *Agent) rpc(t MsgType, payload any) error {
	tries := a.retry.MaxOpRetries
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		l, err := a.waitLink(a.retry.LinkWait)
		if err != nil {
			if errors.Is(err, ErrAgentClosed) || errors.Is(err, ErrAgentDead) {
				return err
			}
			lastErr = err
			continue
		}
		if err := a.writeTo(l, t, payload); err != nil {
			l.fail(err)
			lastErr = err
			continue
		}
		if _, err := a.waitAckOn(l, a.ackTimeout); err != nil {
			l.fail(err)
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("console: %s not delivered after %d attempts: %w", t, tries, lastErr)
}

// targetUploadEpoch is the configuration epoch a fresh upload targets:
// the epoch after the last thresholds this host saw, or 0 before any.
func (a *Agent) targetUploadEpoch() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.thresholds == nil {
		return 0
	}
	return a.thresholds.Epoch + 1
}

// UploadDistribution ships one feature's training samples.
func (a *Agent) UploadDistribution(f features.Feature, samples []float64) error {
	if !f.Valid() {
		return fmt.Errorf("console: invalid feature %d", int(f))
	}
	return a.uploadDistribution(f, samples, a.targetUploadEpoch())
}

func (a *Agent) uploadDistribution(f features.Feature, samples []float64, epoch int) error {
	return a.rpc(MsgDistUpload, DistUpload{
		HostID: a.hostID, Feature: int(f), Samples: samples, Epoch: epoch,
	})
}

// UploadMatrix ships all six features' training windows [lo, hi). The
// target epoch is snapshotted once so a re-learning round stays in one
// epoch even if thresholds arrive mid-upload.
func (a *Agent) UploadMatrix(m *features.Matrix, lo, hi int) error {
	epoch := a.targetUploadEpoch()
	for _, f := range features.All() {
		if err := a.uploadDistribution(f, m.ColumnSlice(f, lo, hi), epoch); err != nil {
			return fmt.Errorf("console: uploading %s: %w", f, err)
		}
	}
	return nil
}

// WaitThresholds blocks until the console pushes thresholds (or the
// timeout expires).
func (a *Agent) WaitThresholds(timeout time.Duration) (Thresholds, error) {
	return a.WaitThresholdsEpoch(0, timeout)
}

// WaitThresholdsEpoch blocks until thresholds of at least the given
// configuration epoch arrive — used after re-uploading a fresh
// training week to wait for the re-learned configuration.
func (a *Agent) WaitThresholdsEpoch(epoch int, timeout time.Duration) (Thresholds, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		if a.thresholds != nil && a.thresholds.Epoch >= epoch {
			thr := *a.thresholds
			a.mu.Unlock()
			return thr, nil
		}
		closed, dead, lastErr, notify := a.closed, a.dead, a.lastErr, a.notify
		a.mu.Unlock()
		if closed {
			return Thresholds{}, ErrAgentClosed
		}
		if dead {
			if lastErr != nil {
				return Thresholds{}, lastErr
			}
			return Thresholds{}, errors.New("console: connection closed")
		}
		select {
		case thr := <-a.thrCh:
			if thr.Epoch >= epoch {
				return thr, nil
			}
		case <-notify:
		case <-deadline.C:
			return Thresholds{}, ErrThresholdsTimeout
		}
	}
}

// Detectors builds the per-feature detectors from the pushed
// thresholds. It returns an error when no thresholds have arrived.
func (a *Agent) Detectors() ([features.NumFeatures]core.Detector, error) {
	var out [features.NumFeatures]core.Detector
	a.mu.Lock()
	thr := a.thresholds
	a.mu.Unlock()
	if thr == nil {
		return out, errors.New("console: no thresholds received")
	}
	for _, f := range features.All() {
		out[f] = core.Detector{Feature: f, Threshold: thr.Values[f]}
	}
	return out, nil
}

// ObserveWindow evaluates one window's feature counts against the
// current thresholds, queueing alerts for any exceedance. bin is the
// window index reported to the console.
func (a *Agent) ObserveWindow(bin int, counts features.Counts) error {
	return a.ObserveVector(bin, counts.AsVector())
}

// ObserveVector is ObserveWindow on a raw feature vector in canonical
// order. The fleet simulator uses it to overlay fractional attack
// volumes (a mimicry size is rarely integral) with exactly the float64
// arithmetic the in-memory evaluation path (core.Evaluate) performs,
// so wire-level and in-memory alarm decisions are bit-identical.
func (a *Agent) ObserveVector(bin int, vec [features.NumFeatures]float64) error {
	dets, err := a.Detectors()
	if err != nil {
		return err
	}
	a.mu.Lock()
	for _, f := range features.All() {
		if dets[f].Alarm(vec[f]) {
			a.pending = append(a.pending, Alert{
				Feature:   int(f),
				Bin:       bin,
				Value:     vec[f],
				Threshold: dets[f].Threshold,
			})
		}
	}
	a.mu.Unlock()
	return nil
}

// PendingAlerts returns the number of queued alerts not yet frozen
// into a spooled batch.
func (a *Agent) PendingAlerts() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// SpooledBatches returns the number of frozen alert batches awaiting
// console acknowledgment — non-zero only while the link is down or a
// flush failed and will be retried.
func (a *Agent) SpooledBatches() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spool)
}

// Reconnects returns how many times the agent healed a lost link.
func (a *Agent) Reconnects() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconnects
}

// Connected reports whether the agent currently holds a live link.
func (a *Agent) Connected() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.link != nil
}

// Flush freezes pending alerts into a sequenced batch and delivers
// every spooled batch in order, waiting for each ack. On failure the
// undelivered batches stay spooled — with their already-assigned
// sequence numbers — so a later Flush re-sends the identical frames
// and the console's sequence dedup keeps counts exact even when only
// the ack (not the batch) was lost. A flush with nothing queued is a
// no-op.
func (a *Agent) Flush() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrAgentClosed
	}
	if len(a.pending) > 0 {
		a.nextSeq++
		a.spool = append(a.spool, AlertBatch{HostID: a.hostID, Seq: a.nextSeq, Alerts: a.pending})
		a.pending = nil
	}
	spool := append([]AlertBatch(nil), a.spool...)
	a.mu.Unlock()
	for _, b := range spool {
		if err := a.rpc(MsgAlertBatch, b); err != nil {
			return err
		}
		a.mu.Lock()
		if len(a.spool) > 0 && a.spool[0].Seq == b.Seq {
			a.spool = a.spool[1:]
		}
		a.mu.Unlock()
	}
	return nil
}

// Ping sends a one-way keepalive on the current link (no ack): it
// refreshes the console's liveness record for this host without
// perturbing the per-connection ack FIFO that rpc relies on.
func (a *Agent) Ping() error {
	a.mu.Lock()
	l, closed := a.link, a.closed
	a.mu.Unlock()
	if closed {
		return ErrAgentClosed
	}
	if l == nil {
		return errors.New("console: no live connection")
	}
	return a.writeTo(l, MsgPing, Ping{HostID: a.hostID})
}

// Close flushes pending alerts on a best-effort basis, closes the
// connection and stops the redial manager.
func (a *Agent) Close() error {
	_ = a.Flush()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	l := a.link
	a.wakeLocked()
	a.mu.Unlock()
	close(a.closedCh)
	if l != nil {
		l.fail(ErrAgentClosed)
	}
	<-a.managerDone
	return nil
}
