package console

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
)

// Agent is the end-host side of the management plane: the behavioral
// HIDS process running on one laptop. It uploads the host's training
// distributions, receives the policy's thresholds, evaluates feature
// windows locally and batches alerts back to the console.
type Agent struct {
	hostID uint32
	conn   net.Conn

	wmu sync.Mutex // serializes frame writes

	mu         sync.Mutex
	thresholds *Thresholds
	lastErr    error
	closed     bool

	thrCh  chan Thresholds
	ackCh  chan Ack
	doneCh chan struct{}

	// pending alerts not yet flushed
	pending []Alert
}

// ErrAgentClosed is returned for operations on a closed agent.
var ErrAgentClosed = errors.New("console: agent closed")

// ErrThresholdsTimeout is returned by WaitThresholds(Epoch) when the
// timeout expires before thresholds arrive. Callers that wait in
// slices (the fleet runner polls between slices for fleet-wide
// aborts) test for it to distinguish "not yet" from a dead agent.
var ErrThresholdsTimeout = errors.New("console: timeout waiting for thresholds")

// Dial connects an agent to the console at addr over TCP and
// completes the hello handshake.
func Dial(addr string, hostID uint32, hostname string) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("console: dialing %s: %w", addr, err)
	}
	return NewAgent(conn, hostID, hostname)
}

// NewAgent runs the agent protocol over an existing connection (the
// tests use net.Pipe).
func NewAgent(conn net.Conn, hostID uint32, hostname string) (*Agent, error) {
	a := &Agent{
		hostID: hostID,
		conn:   conn,
		thrCh:  make(chan Thresholds, 1),
		ackCh:  make(chan Ack, 16),
		doneCh: make(chan struct{}),
	}
	go a.readLoop()
	if err := a.write(MsgHello, Hello{HostID: hostID, Hostname: hostname}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if _, err := a.waitAck(10 * time.Second); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("console: hello not acknowledged: %w", err)
	}
	return a, nil
}

func (a *Agent) write(t MsgType, payload any) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return WriteMsg(a.conn, t, payload)
}

// readLoop dispatches inbound messages until the connection dies.
func (a *Agent) readLoop() {
	defer close(a.doneCh)
	for {
		t, body, err := ReadMsg(a.conn)
		if err != nil {
			a.mu.Lock()
			if a.lastErr == nil && !a.closed {
				a.lastErr = err
			}
			a.mu.Unlock()
			return
		}
		switch t {
		case MsgAck:
			var ack Ack
			if decode(t, body, &ack) == nil {
				select {
				case a.ackCh <- ack:
				default: // slow consumer; acks are advisory
				}
			}
		case MsgThresholds:
			var thr Thresholds
			if decode(t, body, &thr) == nil {
				a.mu.Lock()
				a.thresholds = &thr
				a.mu.Unlock()
				select {
				case a.thrCh <- thr:
				default:
				}
			}
		case MsgError:
			var pe ProtoError
			_ = decode(t, body, &pe)
			a.mu.Lock()
			if a.lastErr == nil {
				a.lastErr = fmt.Errorf("console: server error: %s", pe.Message)
			}
			a.mu.Unlock()
			return
		default:
			a.mu.Lock()
			if a.lastErr == nil {
				a.lastErr = fmt.Errorf("console: unexpected server message %s", t)
			}
			a.mu.Unlock()
			return
		}
	}
}

func (a *Agent) waitAck(timeout time.Duration) (Ack, error) {
	select {
	case ack := <-a.ackCh:
		return ack, nil
	case <-a.doneCh:
		return Ack{}, a.err()
	case <-time.After(timeout):
		return Ack{}, errors.New("console: timeout waiting for ack")
	}
}

func (a *Agent) err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastErr != nil {
		return a.lastErr
	}
	return errors.New("console: connection closed")
}

// UploadDistribution ships one feature's training samples.
func (a *Agent) UploadDistribution(f features.Feature, samples []float64) error {
	if !f.Valid() {
		return fmt.Errorf("console: invalid feature %d", int(f))
	}
	if err := a.write(MsgDistUpload, DistUpload{
		HostID: a.hostID, Feature: int(f), Samples: samples,
	}); err != nil {
		return err
	}
	_, err := a.waitAck(10 * time.Second)
	return err
}

// UploadMatrix ships all six features' training windows [lo, hi).
func (a *Agent) UploadMatrix(m *features.Matrix, lo, hi int) error {
	for _, f := range features.All() {
		if err := a.UploadDistribution(f, m.ColumnSlice(f, lo, hi)); err != nil {
			return fmt.Errorf("console: uploading %s: %w", f, err)
		}
	}
	return nil
}

// WaitThresholds blocks until the console pushes thresholds (or the
// timeout expires).
func (a *Agent) WaitThresholds(timeout time.Duration) (Thresholds, error) {
	return a.WaitThresholdsEpoch(0, timeout)
}

// WaitThresholdsEpoch blocks until thresholds of at least the given
// configuration epoch arrive — used after re-uploading a fresh
// training week to wait for the re-learned configuration.
func (a *Agent) WaitThresholdsEpoch(epoch int, timeout time.Duration) (Thresholds, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		if a.thresholds != nil && a.thresholds.Epoch >= epoch {
			thr := *a.thresholds
			a.mu.Unlock()
			return thr, nil
		}
		a.mu.Unlock()
		select {
		case thr := <-a.thrCh:
			if thr.Epoch >= epoch {
				return thr, nil
			}
		case <-a.doneCh:
			return Thresholds{}, a.err()
		case <-deadline.C:
			return Thresholds{}, ErrThresholdsTimeout
		}
	}
}

// Detectors builds the per-feature detectors from the pushed
// thresholds. It returns an error when no thresholds have arrived.
func (a *Agent) Detectors() ([features.NumFeatures]core.Detector, error) {
	var out [features.NumFeatures]core.Detector
	a.mu.Lock()
	thr := a.thresholds
	a.mu.Unlock()
	if thr == nil {
		return out, errors.New("console: no thresholds received")
	}
	for _, f := range features.All() {
		out[f] = core.Detector{Feature: f, Threshold: thr.Values[f]}
	}
	return out, nil
}

// ObserveWindow evaluates one window's feature counts against the
// current thresholds, queueing alerts for any exceedance. bin is the
// window index reported to the console.
func (a *Agent) ObserveWindow(bin int, counts features.Counts) error {
	return a.ObserveVector(bin, counts.AsVector())
}

// ObserveVector is ObserveWindow on a raw feature vector in canonical
// order. The fleet simulator uses it to overlay fractional attack
// volumes (a mimicry size is rarely integral) with exactly the float64
// arithmetic the in-memory evaluation path (core.Evaluate) performs,
// so wire-level and in-memory alarm decisions are bit-identical.
func (a *Agent) ObserveVector(bin int, vec [features.NumFeatures]float64) error {
	dets, err := a.Detectors()
	if err != nil {
		return err
	}
	a.mu.Lock()
	for _, f := range features.All() {
		if dets[f].Alarm(vec[f]) {
			a.pending = append(a.pending, Alert{
				Feature:   int(f),
				Bin:       bin,
				Value:     vec[f],
				Threshold: dets[f].Threshold,
			})
		}
	}
	a.mu.Unlock()
	return nil
}

// PendingAlerts returns the number of queued, unflushed alerts.
func (a *Agent) PendingAlerts() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// Flush sends queued alerts as one batch and waits for the ack. A
// flush with no pending alerts is a no-op.
func (a *Agent) Flush() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrAgentClosed
	}
	batch := a.pending
	a.pending = nil
	a.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if err := a.write(MsgAlertBatch, AlertBatch{HostID: a.hostID, Alerts: batch}); err != nil {
		return err
	}
	_, err := a.waitAck(10 * time.Second)
	return err
}

// Close flushes pending alerts on a best-effort basis and closes the
// connection.
func (a *Agent) Close() error {
	_ = a.Flush()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	err := a.conn.Close()
	<-a.doneCh
	return err
}
