// Package flows assembles raw packet records into the per-window
// behavioral feature counts of Table 1 — the role Bro played in the
// paper's pipeline ("we processed the traffic traces ... using the Bro
// tool and constructed time-series for each of 6 anomaly detection
// features").
//
// The tracker is per-source: it only accounts for traffic initiated
// by the monitored host (the paper's features are "computed on a per
// source basis"). Inbound packets are used for nothing except
// existing-flow bookkeeping.
package flows

import (
	"fmt"
	"io"
	"time"

	"repro/internal/features"
	"repro/internal/netsim"
)

// Tracker turns a time-ordered packet stream from one end host into
// binned feature counts.
type Tracker struct {
	local       netsim.Addr
	binWidth    int64 // microseconds
	startMicros int64

	cur        int // current bin index
	curCounts  features.Counts
	seenTCP    map[netsim.FlowKey]struct{}
	seenUDP    map[netsim.FlowKey]struct{}
	seenDNS    map[netsim.FlowKey]struct{}
	seenDest   map[netsim.Addr]struct{}
	finished   []features.Counts
	nProcessed int64
	lastTime   int64
}

// NewTracker creates a tracker for the host with address local whose
// capture starts at startMicros, aggregating into binWidth windows.
func NewTracker(local netsim.Addr, binWidth time.Duration, startMicros int64) (*Tracker, error) {
	if binWidth < time.Second {
		return nil, fmt.Errorf("flows: bin width %v too small", binWidth)
	}
	t := &Tracker{
		local:       local,
		binWidth:    binWidth.Microseconds(),
		startMicros: startMicros,
	}
	t.resetBin()
	return t, nil
}

func (t *Tracker) resetBin() {
	t.curCounts = features.Counts{}
	if t.seenTCP == nil {
		t.seenTCP = make(map[netsim.FlowKey]struct{})
		t.seenUDP = make(map[netsim.FlowKey]struct{})
		t.seenDNS = make(map[netsim.FlowKey]struct{})
		t.seenDest = make(map[netsim.Addr]struct{})
		return
	}
	// Reuse the per-bin dedup maps across bins: clearing keeps the
	// allocated buckets, so a long capture stops churning the
	// allocator once it has seen its busiest window.
	clear(t.seenTCP)
	clear(t.seenUDP)
	clear(t.seenDNS)
	clear(t.seenDest)
}

// Reserve pre-allocates the finished-bin buffer for a capture of the
// given length, so Observe's bin-advance loop never regrows it.
func (t *Tracker) Reserve(bins int) {
	if bins > cap(t.finished) {
		grown := make([]features.Counts, len(t.finished), bins)
		copy(grown, t.finished)
		t.finished = grown
	}
}

// ErrOutOfOrder is wrapped into errors returned for records whose
// timestamps precede the capture start or go backwards across bins.
var ErrOutOfOrder = fmt.Errorf("flows: record out of time order")

// Observe processes one packet record. Records must be delivered in
// non-decreasing time order.
func (t *Tracker) Observe(rec netsim.Record) error {
	if rec.Time < t.startMicros {
		return fmt.Errorf("%w: record at %d before capture start %d", ErrOutOfOrder, rec.Time, t.startMicros)
	}
	if rec.Time < t.lastTime {
		return fmt.Errorf("%w: record at %d after one at %d", ErrOutOfOrder, rec.Time, t.lastTime)
	}
	t.lastTime = rec.Time
	bin := int((rec.Time - t.startMicros) / t.binWidth)
	for t.cur < bin {
		t.finished = append(t.finished, t.curCounts)
		t.resetBin()
		t.cur++
	}
	t.nProcessed++

	if rec.Src.Addr != t.local {
		return nil // inbound or foreign traffic: not per-source activity
	}
	key := rec.Key()
	switch rec.Proto {
	case netsim.ProtoTCP:
		if rec.Flags.IsSYN() {
			t.curCounts.TCPSYN++
			if _, ok := t.seenTCP[key]; !ok {
				t.seenTCP[key] = struct{}{}
				t.curCounts.TCP++
				if rec.Dst.Port == netsim.PortHTTP {
					t.curCounts.HTTP++
				}
				t.markDest(rec.Dst.Addr)
			}
		}
	case netsim.ProtoUDP:
		if rec.IsDNS() {
			if _, ok := t.seenDNS[key]; !ok {
				t.seenDNS[key] = struct{}{}
				t.curCounts.DNS++
				t.markDest(rec.Dst.Addr)
			}
			return nil
		}
		if _, ok := t.seenUDP[key]; !ok {
			t.seenUDP[key] = struct{}{}
			t.curCounts.UDP++
			t.markDest(rec.Dst.Addr)
		}
	}
	return nil
}

func (t *Tracker) markDest(a netsim.Addr) {
	if _, ok := t.seenDest[a]; !ok {
		t.seenDest[a] = struct{}{}
		t.curCounts.Distinct++
	}
}

// Processed returns the number of records observed.
func (t *Tracker) Processed() int64 { return t.nProcessed }

// Finish closes the capture at totalBins windows and returns the
// matrix (padding trailing idle bins with zeros). The tracker must
// not be used afterwards.
func (t *Tracker) Finish(totalBins int) (*features.Matrix, error) {
	empty := features.Counts{}
	if t.cur >= totalBins && t.curCounts != empty {
		return nil, fmt.Errorf("flows: observed activity in bin %d beyond requested %d bins", t.cur, totalBins)
	}
	// Rows beyond the requested capture must be idle; verify them
	// before the conversion pass so the main loop needs no per-row
	// bounds or emptiness checks.
	for b := totalBins; b < len(t.finished); b++ {
		if t.finished[b] != empty {
			return nil, fmt.Errorf("flows: observed activity in bin %d beyond requested %d bins", b, totalBins)
		}
	}
	m := features.NewMatrix(time.Duration(t.binWidth)*time.Microsecond, t.startMicros, totalBins)
	n := len(t.finished)
	if n > totalBins {
		n = totalBins
	}
	for b := 0; b < n; b++ {
		m.Rows[b] = t.finished[b].AsVector()
	}
	if t.cur < totalBins {
		m.Rows[t.cur] = t.curCounts.AsVector()
	}
	return m, nil
}

// ExtractTrace is a convenience that reads an entire .etr trace
// through a tracker. The host address is the one used by the
// synthetic population for the trace's hostID-th user; callers with
// other address plans should drive Observe directly.
func ExtractTrace(tr *netsim.TraceReader, local netsim.Addr, binWidth time.Duration, startMicros int64, totalBins int) (*features.Matrix, error) {
	t, err := NewTracker(local, binWidth, startMicros)
	if err != nil {
		return nil, err
	}
	t.Reserve(totalBins)
	var rec netsim.Record
	for {
		err := tr.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := t.Observe(rec); err != nil {
			return nil, err
		}
	}
	return t.Finish(totalBins)
}
