package flows

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/trace"
)

var (
	host   = netsim.AddrFrom4(10, 1, 1, 10)
	remote = netsim.AddrFrom4(93, 10, 0, 1)
	rem2   = netsim.AddrFrom4(93, 10, 0, 2)
)

func mustTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(host, 15*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func tcpSYN(ts int64, srcPort uint16, dst netsim.Endpoint) netsim.Record {
	return netsim.Record{Time: ts, Src: netsim.Endpoint{Addr: host, Port: srcPort},
		Dst: dst, Proto: netsim.ProtoTCP, Flags: netsim.FlagSYN, Length: 60}
}

func TestTrackerCountsTCPConnection(t *testing.T) {
	tr := mustTracker(t)
	dst := netsim.Endpoint{Addr: remote, Port: 443}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tr.Observe(tcpSYN(100, 10000, dst)))
	must(tr.Observe(tcpSYN(200, 10000, dst))) // SYN retransmit: same flow
	// SYN-ACK reply (inbound) must not count.
	must(tr.Observe(netsim.Record{Time: 300, Src: dst,
		Dst:   netsim.Endpoint{Addr: host, Port: 10000},
		Proto: netsim.ProtoTCP, Flags: netsim.FlagSYN | netsim.FlagACK}))
	m, err := tr.Finish(1)
	if err != nil {
		t.Fatal(err)
	}
	row := m.Rows[0]
	if row[features.TCP] != 1 {
		t.Errorf("TCP = %g, want 1", row[features.TCP])
	}
	if row[features.TCPSYN] != 2 {
		t.Errorf("TCPSYN = %g, want 2 (SYN + retransmit)", row[features.TCPSYN])
	}
	if row[features.HTTP] != 0 {
		t.Errorf("HTTP = %g, want 0 for port 443", row[features.HTTP])
	}
	if row[features.Distinct] != 1 {
		t.Errorf("Distinct = %g, want 1", row[features.Distinct])
	}
}

func TestTrackerHTTPClassification(t *testing.T) {
	tr := mustTracker(t)
	_ = tr.Observe(tcpSYN(0, 10000, netsim.Endpoint{Addr: remote, Port: 80}))
	_ = tr.Observe(tcpSYN(1, 10001, netsim.Endpoint{Addr: rem2, Port: 443}))
	m, _ := tr.Finish(1)
	if m.Rows[0][features.HTTP] != 1 || m.Rows[0][features.TCP] != 2 {
		t.Fatalf("HTTP=%g TCP=%g", m.Rows[0][features.HTTP], m.Rows[0][features.TCP])
	}
}

func TestTrackerUDPAndDNS(t *testing.T) {
	tr := mustTracker(t)
	udpDst := netsim.Endpoint{Addr: remote, Port: 5000}
	dnsDst := netsim.Endpoint{Addr: trace.DNSServerAddr, Port: netsim.PortDNS}
	_ = tr.Observe(netsim.Record{Time: 0, Src: netsim.Endpoint{Addr: host, Port: 20000},
		Dst: udpDst, Proto: netsim.ProtoUDP})
	_ = tr.Observe(netsim.Record{Time: 1, Src: netsim.Endpoint{Addr: host, Port: 20000},
		Dst: udpDst, Proto: netsim.ProtoUDP}) // same flow
	_ = tr.Observe(netsim.Record{Time: 2, Src: netsim.Endpoint{Addr: host, Port: 20001},
		Dst: dnsDst, Proto: netsim.ProtoUDP})
	_ = tr.Observe(netsim.Record{Time: 3, Src: netsim.Endpoint{Addr: host, Port: 20002},
		Dst: dnsDst, Proto: netsim.ProtoUDP}) // second DNS query, new flow
	m, _ := tr.Finish(1)
	row := m.Rows[0]
	if row[features.UDP] != 1 {
		t.Errorf("UDP = %g, want 1", row[features.UDP])
	}
	if row[features.DNS] != 2 {
		t.Errorf("DNS = %g, want 2", row[features.DNS])
	}
	if row[features.Distinct] != 2 { // remote + resolver
		t.Errorf("Distinct = %g, want 2", row[features.Distinct])
	}
}

func TestTrackerIgnoresForeignTraffic(t *testing.T) {
	tr := mustTracker(t)
	other := netsim.AddrFrom4(10, 1, 1, 99)
	_ = tr.Observe(netsim.Record{Time: 0, Src: netsim.Endpoint{Addr: other, Port: 1},
		Dst: netsim.Endpoint{Addr: remote, Port: 80}, Proto: netsim.ProtoTCP, Flags: netsim.FlagSYN})
	m, _ := tr.Finish(1)
	if m.Rows[0] != (features.Counts{}).AsVector() {
		t.Fatalf("foreign traffic counted: %v", m.Rows[0])
	}
}

func TestTrackerBinBoundaries(t *testing.T) {
	tr := mustTracker(t)
	width := (15 * time.Minute).Microseconds()
	_ = tr.Observe(tcpSYN(0, 10000, netsim.Endpoint{Addr: remote, Port: 80}))
	_ = tr.Observe(tcpSYN(width, 10001, netsim.Endpoint{Addr: remote, Port: 80}))     // bin 1 exactly
	_ = tr.Observe(tcpSYN(3*width+1, 10002, netsim.Endpoint{Addr: remote, Port: 80})) // bin 3
	m, err := tr.Finish(5)
	if err != nil {
		t.Fatal(err)
	}
	wantTCP := []float64{1, 1, 0, 1, 0}
	for b, want := range wantTCP {
		if m.Rows[b][features.TCP] != want {
			t.Fatalf("bin %d TCP = %g, want %g", b, m.Rows[b][features.TCP], want)
		}
	}
}

func TestTrackerPerBinFlowReset(t *testing.T) {
	// The same 5-tuple re-appearing in a later bin counts again
	// (per-window counters, as the features are defined).
	tr := mustTracker(t)
	width := (15 * time.Minute).Microseconds()
	dst := netsim.Endpoint{Addr: remote, Port: 80}
	_ = tr.Observe(tcpSYN(0, 10000, dst))
	_ = tr.Observe(tcpSYN(width+5, 10000, dst))
	m, _ := tr.Finish(2)
	if m.Rows[0][features.TCP] != 1 || m.Rows[1][features.TCP] != 1 {
		t.Fatalf("rows: %v %v", m.Rows[0], m.Rows[1])
	}
}

func TestTrackerOutOfOrder(t *testing.T) {
	tr := mustTracker(t)
	_ = tr.Observe(tcpSYN(1000, 10000, netsim.Endpoint{Addr: remote, Port: 80}))
	err := tr.Observe(tcpSYN(999, 10001, netsim.Endpoint{Addr: remote, Port: 80}))
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	tr2, _ := NewTracker(host, 15*time.Minute, 5000)
	if err := tr2.Observe(tcpSYN(10, 1, netsim.Endpoint{Addr: remote, Port: 80})); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("pre-start record: err = %v", err)
	}
}

func TestTrackerBeyondRequestedBins(t *testing.T) {
	tr := mustTracker(t)
	width := (15 * time.Minute).Microseconds()
	_ = tr.Observe(tcpSYN(2*width+1, 10000, netsim.Endpoint{Addr: remote, Port: 80}))
	if _, err := tr.Finish(2); err == nil {
		t.Fatal("activity beyond requested bins accepted")
	}
}

func TestTrackerRejectsTinyBins(t *testing.T) {
	if _, err := NewTracker(host, time.Millisecond, 0); err == nil {
		t.Fatal("millisecond bins accepted")
	}
}

// TestPacketPathMatchesFastPath is the pipeline's end-to-end
// equivalence check: packets materialized by trace.EmitBin, run
// through the flow tracker, must reproduce exactly the counts the
// generator's fast path reports, for every user and bin.
func TestPacketPathMatchesFastPath(t *testing.T) {
	pop := trace.MustPopulation(trace.Config{Users: 6, Weeks: 1, Seed: 21})
	const bins = 80 // ~a day of 15-minute bins
	for _, u := range pop.Users {
		tr, err := NewTracker(u.Addr, pop.Cfg.BinWidth, pop.Cfg.StartMicros)
		if err != nil {
			t.Fatal(err)
		}
		var obsErr error
		for b := 0; b < bins; b++ {
			u.EmitBin(b, func(rec netsim.Record) {
				if obsErr == nil {
					obsErr = tr.Observe(rec)
				}
			})
		}
		if obsErr != nil {
			t.Fatalf("user %d: %v", u.ID, obsErr)
		}
		m, err := tr.Finish(bins)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < bins; b++ {
			want := u.BinCounts(b).AsVector()
			if m.Rows[b] != want {
				t.Fatalf("user %d bin %d: packet path %v != fast path %v",
					u.ID, b, m.Rows[b], want)
			}
		}
	}
}

// TestTraceFileRoundTripThroughTracker covers the on-disk path:
// User.WriteTrace -> .etr bytes -> TraceReader -> ExtractTrace.
func TestTraceFileRoundTripThroughTracker(t *testing.T) {
	pop := trace.MustPopulation(trace.Config{Users: 2, Weeks: 1, Seed: 33})
	u := pop.Users[1]
	const bins = 40
	var buf bytes.Buffer
	n, err := u.WriteTrace(&buf, 0, bins)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace written")
	}
	rd, err := netsim.NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.HostID() != uint32(u.ID) {
		t.Fatalf("hostID = %d", rd.HostID())
	}
	m, err := ExtractTrace(rd, u.Addr, pop.Cfg.BinWidth, pop.Cfg.StartMicros, bins)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bins; b++ {
		if m.Rows[b] != u.BinCounts(b).AsVector() {
			t.Fatalf("bin %d: file path %v != fast path %v", b, m.Rows[b], u.BinCounts(b).AsVector())
		}
	}
}

func TestWriteTraceBadRange(t *testing.T) {
	pop := trace.MustPopulation(trace.Config{Users: 1, Weeks: 1, Seed: 1})
	var buf bytes.Buffer
	if _, err := pop.Users[0].WriteTrace(&buf, 5, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := pop.Users[0].WriteTrace(&buf, 0, 1<<20); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	tr, _ := NewTracker(host, 15*time.Minute, 0)
	rec := tcpSYN(0, 10000, netsim.Endpoint{Addr: remote, Port: 80})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Time = int64(i) * 10
		rec.Src.Port = uint16(10000 + i%40000)
		_ = tr.Observe(rec)
	}
}

func BenchmarkEmitAndExtractBin(b *testing.B) {
	pop := trace.MustPopulation(trace.Config{Users: 1, Weeks: 1, Seed: 2})
	u := pop.Users[0]
	for i := 0; i < b.N; i++ {
		bin := 40 + i%600
		tr, _ := NewTracker(u.Addr, pop.Cfg.BinWidth, u.BinStartMicros(bin))
		u.EmitBin(bin, func(rec netsim.Record) { _ = tr.Observe(rec) })
		_, _ = tr.Finish(1)
	}
}
