package core

import (
	"testing"

	"repro/internal/features"
	"repro/internal/trace"
)

// popSeries extracts train/test series for one feature from a small
// generated population, following the paper's week1-train/week2-test
// methodology.
func popSeries(t testing.TB, users, seed int, f features.Feature) (train, test [][]float64) {
	t.Helper()
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 2, Seed: uint64(seed)})
	for _, u := range pop.Users {
		m := u.Series()
		lo0, hi0 := m.WeekRange(0)
		lo1, hi1 := m.WeekRange(1)
		train = append(train, m.ColumnSlice(f, lo0, hi0))
		test = append(test, m.ColumnSlice(f, lo1, hi1))
	}
	return train, test
}

func TestEvaluatePolicyFullDiversityControlsFP(t *testing.T) {
	train, test := popSeries(t, 30, 23, features.TCP)
	res, err := EvaluatePolicy(EvalInput{
		Train:  train,
		Test:   test,
		Policy: Policy{Percentile{0.99}, FullDiversity{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 30 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Thresholds learned on week 1 applied to week 2: FP rates hover
	// near 1% but are NOT exactly 1% (threshold drift, §6.1). Check
	// they are at least bounded sanely for the bulk of users.
	over := 0
	for _, p := range res.Points {
		if p.FP > 0.08 {
			over++
		}
		if p.FN != 0 {
			t.Fatalf("FN nonzero with no attack: %+v", p)
		}
	}
	if over > 3 {
		t.Fatalf("%d of 30 users exceed 8%% FP under own-percentile thresholds", over)
	}
}

func TestEvaluatePolicyDiversityBeatsHomogeneousOnUtility(t *testing.T) {
	// The headline Fig 3 result on generated data, with an attack
	// overlay so FN is meaningful.
	train, test := popSeries(t, 40, 29, features.TCP)
	attack := make([][]float64, len(test))
	for i := range attack {
		attack[i] = make([]float64, len(test[i]))
		for b := range attack[i] {
			if b%7 == 3 { // attack ~14% of windows
				attack[i][b] = 120
			}
		}
	}
	mags := []float64{120}
	run := func(g Grouping) float64 {
		res, err := EvaluatePolicy(EvalInput{
			Train: train, Test: test, Attack: attack,
			AttackMagnitudes: mags,
			Policy:           Policy{Percentile{0.99}, g},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanUtility(0.4)
	}
	homog := run(Homogeneous{})
	div := run(FullDiversity{})
	part := run(PartialDiversity{NumGroups: 8})
	if div <= homog {
		t.Fatalf("diversity utility %g not above homogeneous %g", div, homog)
	}
	if part <= homog {
		t.Fatalf("8-partial utility %g not above homogeneous %g", part, homog)
	}
}

func TestEvaluatePolicyGapGrowsWithW(t *testing.T) {
	// Fig 3(b): the diversity-vs-homogeneous utility gap grows with
	// the false-negative weight w.
	train, test := popSeries(t, 40, 31, features.TCP)
	attack := make([][]float64, len(test))
	for i := range attack {
		attack[i] = make([]float64, len(test[i]))
		for b := range attack[i] {
			if b%5 == 2 {
				attack[i][b] = 80
			}
		}
	}
	input := func(g Grouping) EvalInput {
		return EvalInput{Train: train, Test: test, Attack: attack,
			AttackMagnitudes: []float64{80},
			Policy:           Policy{Percentile{0.99}, g}}
	}
	resH, err := EvaluatePolicy(input(Homogeneous{}))
	if err != nil {
		t.Fatal(err)
	}
	resD, err := EvaluatePolicy(input(FullDiversity{}))
	if err != nil {
		t.Fatal(err)
	}
	gapLow := resD.MeanUtility(0.1) - resH.MeanUtility(0.1)
	gapHigh := resD.MeanUtility(0.9) - resH.MeanUtility(0.9)
	if gapHigh <= gapLow {
		t.Fatalf("gap at w=0.9 (%g) not above gap at w=0.1 (%g)", gapHigh, gapLow)
	}
}

func TestEvaluatePolicyFalseAlarmVolume(t *testing.T) {
	// Table 3's direction: full diversity sends no more false alarms
	// to the console than homogeneous (usually far fewer).
	train, test := popSeries(t, 40, 37, features.TCP)
	run := func(g Grouping) int {
		res, err := EvaluatePolicy(EvalInput{Train: train, Test: test,
			Policy: Policy{Percentile{0.99}, g}})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalFalseAlarms()
	}
	homog := run(Homogeneous{})
	div := run(FullDiversity{})
	if div > homog {
		t.Fatalf("diversity false alarms %d exceed homogeneous %d", div, homog)
	}
}

func TestEvaluatePolicyErrors(t *testing.T) {
	if _, err := EvaluatePolicy(EvalInput{}); err == nil {
		t.Fatal("empty input accepted")
	}
	train := [][]float64{{1, 2, 3}}
	if _, err := EvaluatePolicy(EvalInput{Train: train, Test: nil,
		Policy: Policy{Percentile{0.99}, Homogeneous{}}}); err == nil {
		t.Fatal("test/train mismatch accepted")
	}
	if _, err := EvaluatePolicy(EvalInput{Train: train, Test: train,
		Attack: [][]float64{{1}, {2}},
		Policy: Policy{Percentile{0.99}, Homogeneous{}}}); err == nil {
		t.Fatal("attack population mismatch accepted")
	}
	if _, err := EvaluatePolicy(EvalInput{Train: [][]float64{{}}, Test: train,
		Policy: Policy{Percentile{0.99}, Homogeneous{}}}); err == nil {
		t.Fatal("empty training series accepted")
	}
	if _, err := EvaluatePolicy(EvalInput{Train: train, Test: [][]float64{{1, 2}},
		Attack: [][]float64{{1}},
		Policy: Policy{Percentile{0.99}, Homogeneous{}}}); err == nil {
		t.Fatal("attack series length mismatch accepted")
	}
}

func TestEvalResultAccessors(t *testing.T) {
	train := [][]float64{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}}
	test := [][]float64{{1, 2, 3, 4, 100}, {10, 20, 30, 40, 50}}
	res, err := EvaluatePolicy(EvalInput{Train: train, Test: test,
		Policy: Policy{Percentile{0.99}, FullDiversity{}}})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilities(0.4)
	if len(u) != 2 {
		t.Fatalf("utilities: %v", u)
	}
	if res.MeanUtility(0.4) != (u[0]+u[1])/2 {
		t.Fatal("MeanUtility != mean of Utilities")
	}
	bp, err := res.UtilityBoxplot(0.4)
	if err != nil || bp.N != 2 {
		t.Fatalf("boxplot: %+v, %v", bp, err)
	}
	// User 0's 100 exceeds its q99 (~5); user 1's 50 exceeds its
	// interpolated q99 (49.6).
	if res.TotalFalseAlarms() != 2 {
		t.Fatalf("false alarms = %d", res.TotalFalseAlarms())
	}
	if res.FractionAlarming() != 0 {
		t.Fatalf("FractionAlarming = %g with no attack", res.FractionAlarming())
	}
}

func TestFractionAlarming(t *testing.T) {
	train := [][]float64{{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}}
	test := [][]float64{{1, 1, 1}, {1, 1, 1}}
	attack := [][]float64{{0, 100, 0}, {0, 0.1, 0}} // user 0 detected, user 1 missed
	res, err := EvaluatePolicy(EvalInput{Train: train, Test: test, Attack: attack,
		Policy: Policy{Percentile{0.99}, FullDiversity{}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FractionAlarming(); got != 0.5 {
		t.Fatalf("FractionAlarming = %g, want 0.5", got)
	}
}
