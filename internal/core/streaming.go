package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// StreamPlan is the streaming counterpart of ConfigureWith: it derives
// a policy's Assignment from per-user training distributions that are
// presented one at a time (in any order, from any goroutine) instead
// of all resident at once. The protocol is
//
//	plan, _ := NewStreamPlan(policy, stat, attack)
//	// fan FoldUser(u, dist) over shards/workers, each user exactly once
//	asn, _ := plan.Finish()
//
// and the resulting Assignment is bit-identical to
// ConfigureWith(ConfigureInput{...}) over the same distributions:
// singleton groups take their threshold straight from the member's own
// distribution (whose samples are exactly the merged copy ConfigureWith
// would build), and multi-user groups fold members into a
// stats.Compressed accumulator whose quantiles and threshold frontier
// reproduce the merged sorted column operand for operand. The fold is
// associative and commutative — the accumulator state depends only on
// the multiset of samples — so worker scheduling cannot change the
// result.
//
// Multi-user groups support Percentile and FrontierScorer heuristics
// (everything the experiment runners use); moment-based heuristics
// like MeanSigma would need a float summation order the streaming fold
// cannot reproduce bit for bit, so NewStreamPlan rejects them up front
// when the partition has any multi-user group.
type StreamPlan struct {
	policy Policy
	attack []float64
	groups [][]int
	// groupOf maps each user to its group index.
	groupOf []int
	// acc holds one merged-distribution accumulator per multi-user
	// group (nil for singletons), guarded by the matching mu entry.
	acc []*stats.Compressed
	mu  []sync.Mutex

	thresholds []float64
	groupThr   []float64
	folded     atomic.Int64
}

// NewStreamPlan partitions the population with the policy's grouping
// over the per-user tail statistic (stat[u] must be user u's training
// 0.99-quantile, exactly what ConfigureWith computes internally) and
// prepares per-group accumulators for the fold.
func NewStreamPlan(policy Policy, stat []float64, attack []float64) (*StreamPlan, error) {
	n := len(stat)
	if n == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	groups, err := policy.Grouping.Groups(stat)
	if err != nil {
		return nil, fmt.Errorf("core: grouping %s: %w", policy.Grouping.Name(), err)
	}
	if err := ValidatePartition(groups, n); err != nil {
		return nil, err
	}
	p := &StreamPlan{
		policy:     policy,
		attack:     attack,
		groups:     groups,
		groupOf:    make([]int, n),
		acc:        make([]*stats.Compressed, len(groups)),
		mu:         make([]sync.Mutex, len(groups)),
		thresholds: make([]float64, n),
		groupThr:   make([]float64, len(groups)),
	}
	for g, grp := range groups {
		for _, u := range grp {
			p.groupOf[u] = g
		}
		if len(grp) > 1 {
			if !streamableHeuristic(policy.Heuristic) {
				return nil, fmt.Errorf("core: streaming configure: heuristic %s unsupported on multi-user groups",
					policy.Heuristic.Name())
			}
			p.acc[g] = &stats.Compressed{}
		}
	}
	return p, nil
}

// streamableHeuristic reports whether a heuristic's group threshold
// can be derived from the compressed merged multiset.
func streamableHeuristic(h Heuristic) bool {
	switch h.(type) {
	case Percentile, FrontierScorer:
		return true
	}
	return false
}

// FoldUser presents user u's training distribution. Each user must be
// folded exactly once; concurrent calls for distinct users are safe.
// The distribution is not retained — its samples are either consumed
// into a threshold immediately (singleton groups) or merged into the
// group accumulator — so shard-backed callers may release the backing
// memory as soon as the call returns.
func (p *StreamPlan) FoldUser(u int, dist *stats.Empirical) error {
	if u < 0 || u >= len(p.groupOf) {
		return fmt.Errorf("core: user %d outside population of %d", u, len(p.groupOf))
	}
	if dist == nil || dist.N() == 0 {
		return fmt.Errorf("core: user %d has no training data", u)
	}
	g := p.groupOf[u]
	if len(p.groups[g]) == 1 {
		// A singleton group's merged distribution is a copy of the
		// member's own, so Threshold on the member's distribution is
		// the exact ConfigureWith result without the copy.
		t, err := p.policy.Heuristic.Threshold(dist, p.attack)
		if err != nil {
			return fmt.Errorf("core: heuristic %s on group %d: %w", p.policy.Heuristic.Name(), g, err)
		}
		p.thresholds[u] = t
		p.groupThr[g] = t
	} else {
		p.mu[g].Lock()
		p.acc[g].AddEmpirical(dist)
		p.mu[g].Unlock()
	}
	p.folded.Add(1)
	return nil
}

// Finish derives the multi-user group thresholds from the folded
// accumulators and assembles the Assignment.
func (p *StreamPlan) Finish() (*Assignment, error) {
	n := len(p.groupOf)
	if got := p.folded.Load(); got != int64(n) {
		return nil, fmt.Errorf("core: streaming configure folded %d of %d users", got, n)
	}
	for g, grp := range p.groups {
		if len(grp) == 1 {
			continue
		}
		t, err := p.mergedThreshold(g)
		if err != nil {
			return nil, fmt.Errorf("core: heuristic %s on group %d: %w", p.policy.Heuristic.Name(), g, err)
		}
		p.groupThr[g] = t
		for _, u := range grp {
			p.thresholds[u] = t
		}
	}
	return &Assignment{
		Thresholds:     p.thresholds,
		Groups:         p.groups,
		GroupThreshold: p.groupThr,
	}, nil
}

// mergedThreshold reproduces Heuristic.Threshold over the group's
// merged distribution from the compressed accumulator.
func (p *StreamPlan) mergedThreshold(g int) (float64, error) {
	switch h := p.policy.Heuristic.(type) {
	case Percentile:
		return p.acc[g].Quantile(h.Q)
	case FrontierScorer:
		if err := h.validateScorer(); err != nil {
			return 0, err
		}
		if len(p.attack) == 0 {
			return 0, fmt.Errorf("core: objective-optimizing heuristic requires attack magnitudes")
		}
		fr, err := stats.NewFrontierCompressed(p.acc[g], p.attack)
		if err != nil {
			return 0, err
		}
		return fr.Maximize(h.Score), nil
	}
	return 0, fmt.Errorf("core: streaming configure: heuristic %s unsupported on multi-user groups",
		p.policy.Heuristic.Name())
}
