package core

import (
	"fmt"

	"repro/internal/stats"
)

// Policy is the paper's two-component enterprise configuration policy
// (§4): a threshold-selection heuristic plus a grouping method.
type Policy struct {
	Heuristic Heuristic
	Grouping  Grouping
}

// Name renders "heuristic/grouping".
func (p Policy) Name() string {
	return fmt.Sprintf("%s/%s", p.Heuristic.Name(), p.Grouping.Name())
}

// Assignment is the result of applying a policy to a population for
// one feature: one threshold per user plus the group structure that
// produced it.
type Assignment struct {
	// Thresholds has one entry per user.
	Thresholds []float64
	// Groups is the partition used; Groups[g] lists user indices.
	Groups [][]int
	// GroupThreshold has one entry per group, aligned with Groups.
	GroupThreshold []float64
}

// GroupOf returns the index of the group containing user u, or -1.
func (a *Assignment) GroupOf(u int) int {
	for g, grp := range a.Groups {
		for _, v := range grp {
			if v == u {
				return g
			}
		}
	}
	return -1
}

// Configure applies a policy to per-user training distributions:
//
//  1. A per-user tail statistic (the 99th percentile) is computed to
//     drive the grouping, as in §5.
//  2. The grouping partitions users.
//  3. Within each group, member training distributions are merged
//     into one (the homogeneous case merges everyone — "all the
//     individual distributions are collapsed into a single global
//     distribution", §4) and the heuristic extracts the group
//     threshold, which every member receives.
//
// attack supplies representative attack magnitudes to
// objective-optimizing heuristics; nil is fine for Percentile and
// MeanSigma.
func Configure(train []*stats.Empirical, policy Policy, attack []float64) (*Assignment, error) {
	return ConfigureWith(ConfigureInput{Train: train, Policy: policy, Attack: attack})
}

// ConfigureInput bundles the inputs of ConfigureWith.
type ConfigureInput struct {
	// Train holds one training distribution per user.
	Train []*stats.Empirical
	// Policy is the heuristic × grouping under configuration.
	Policy Policy
	// Attack supplies representative attack magnitudes to
	// objective-optimizing heuristics; nil is fine for Percentile and
	// MeanSigma.
	Attack []float64
	// UserFrontiers optionally supplies pre-built threshold frontiers
	// aligned with Train — each built from that user's training
	// distribution and the same Attack magnitudes. When the policy's
	// heuristic is a FrontierScorer, singleton groups take their
	// threshold straight from the cached frontier instead of
	// re-deriving the candidate set; merged groups (and non-scorer
	// heuristics) are unaffected. The analysis workspace passes its
	// memoized per-user frontiers here. Thresholds are identical with
	// or without frontiers — this is purely a fast path.
	UserFrontiers []*stats.Frontier
}

// ConfigureWith is Configure with optional cached inputs; see
// ConfigureInput.
func ConfigureWith(in ConfigureInput) (*Assignment, error) {
	train, policy := in.Train, in.Policy
	n := len(train)
	if n == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	if in.UserFrontiers != nil && len(in.UserFrontiers) != n {
		return nil, fmt.Errorf("core: %d user frontiers for %d users", len(in.UserFrontiers), n)
	}
	stat := make([]float64, n)
	for i, tr := range train {
		if tr == nil || tr.N() == 0 {
			return nil, fmt.Errorf("core: user %d has no training data", i)
		}
		stat[i] = tr.MustQuantile(0.99)
	}
	groups, err := policy.Grouping.Groups(stat)
	if err != nil {
		return nil, fmt.Errorf("core: grouping %s: %w", policy.Grouping.Name(), err)
	}
	if err := ValidatePartition(groups, n); err != nil {
		return nil, err
	}
	// The cached-frontier fast path only engages when it cannot change
	// behavior: valid scorer parameters and non-empty attack set (so
	// the slow path could not have errored).
	scorer, _ := policy.Heuristic.(FrontierScorer)
	useFrontiers := scorer != nil && in.UserFrontiers != nil &&
		len(in.Attack) > 0 && scorer.validateScorer() == nil
	asn := &Assignment{
		Thresholds:     make([]float64, n),
		Groups:         groups,
		GroupThreshold: make([]float64, len(groups)),
	}
	for g, grp := range groups {
		var t float64
		if useFrontiers && len(grp) == 1 && in.UserFrontiers[grp[0]] != nil {
			// A singleton group's merged distribution is a copy of the
			// member's own, so the member's frontier yields the exact
			// same threshold without re-merging or re-enumerating.
			t = in.UserFrontiers[grp[0]].Maximize(scorer.Score)
		} else {
			members := make([]*stats.Empirical, len(grp))
			for i, u := range grp {
				members[i] = train[u]
			}
			merged, err := stats.MergeEmpiricals(members)
			if err != nil {
				return nil, err
			}
			if t, err = policy.Heuristic.Threshold(merged, in.Attack); err != nil {
				return nil, fmt.Errorf("core: heuristic %s on group %d: %w", policy.Heuristic.Name(), g, err)
			}
		}
		asn.GroupThreshold[g] = t
		for _, u := range grp {
			asn.Thresholds[u] = t
		}
	}
	return asn, nil
}

// BestUsers returns the indices of the k users with the lowest
// thresholds — the paper's "best users per alarm type" (Table 2):
// low-threshold users can identify small, stealthy anomalies.
// Ties break toward lower user index, matching a stable sort.
func (a *Assignment) BestUsers(k int) []int {
	idx := sortedIndices(a.Thresholds)
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Overlap counts how many users appear in both lists (Table 2's
// cross-feature comparison of best-user identities).
func Overlap(a, b []int) int {
	set := make(map[int]struct{}, len(a))
	for _, u := range a {
		set[u] = struct{}{}
	}
	n := 0
	for _, u := range b {
		if _, ok := set[u]; ok {
			n++
		}
	}
	return n
}
