package core
