package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/features"
	"repro/internal/stats"
)

func TestDetectorAlarm(t *testing.T) {
	d := Detector{Feature: features.TCP, Threshold: 10}
	if d.Alarm(10) {
		t.Error("value == threshold must not alarm (strict exceedance)")
	}
	if !d.Alarm(10.0001) {
		t.Error("value just above threshold must alarm")
	}
	if d.Alarm(0) {
		t.Error("zero alarmed")
	}
}

func TestDetectorCountAndBins(t *testing.T) {
	d := Detector{Threshold: 5}
	series := []float64{1, 6, 5, 9, 2, 7}
	if got := d.CountAlarms(series); got != 3 {
		t.Fatalf("CountAlarms = %d, want 3", got)
	}
	bins := d.AlarmBins(series)
	want := []int{1, 3, 5}
	if len(bins) != len(want) {
		t.Fatalf("AlarmBins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("AlarmBins = %v, want %v", bins, want)
		}
	}
	if d.String() == "" {
		t.Error("empty String()")
	}
}

func TestEvaluateConfusion(t *testing.T) {
	benign := []float64{1, 2, 3, 4, 100}
	attack := []float64{0, 50, 0, 0.5, 0}
	// threshold 10: window1 (2+50=52) TP; window3 (4+0.5) FN;
	// window4 (100) FP; windows 0,2 TN.
	c, err := Evaluate(benign, attack, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Confusion{TP: 1, FN: 1, FP: 1, TN: 2}
	if c != want {
		t.Fatalf("confusion = %+v, want %+v", c, want)
	}
}

func TestEvaluateNilAttack(t *testing.T) {
	c, err := Evaluate([]float64{1, 20, 3}, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 0 || c.FN != 0 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestEvaluateLengthMismatch(t *testing.T) {
	if _, err := Evaluate([]float64{1, 2}, []float64{1}, 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEvaluateTotalsProperty(t *testing.T) {
	f := func(seed uint64, thrRaw uint8) bool {
		n := int(seed%97) + 1
		benign := make([]float64, n)
		attack := make([]float64, n)
		x := seed
		for i := range benign {
			x = x*6364136223846793005 + 1442695040888963407
			benign[i] = float64(x % 100)
			x = x*6364136223846793005 + 1442695040888963407
			if x%3 == 0 {
				attack[i] = float64(x % 50)
			}
		}
		c, err := Evaluate(benign, attack, float64(thrRaw))
		return err == nil && c.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	if got := FalsePositiveRate([]float64{1, 2, 3, 40}, 10); got != 0.25 {
		t.Fatalf("FPR = %g", got)
	}
	if got := FalsePositiveRate(nil, 10); got != 0 {
		t.Fatalf("empty FPR = %g", got)
	}
}

func TestOperatingPoint(t *testing.T) {
	o := OperatingPoint{FP: 0.1, FN: 0.4}
	if got := o.Utility(0.4); math.Abs(got-(1-(0.4*0.4+0.6*0.1))) > 1e-12 {
		t.Fatalf("Utility = %g", got)
	}
	if got := o.DetectionRate(); got != 0.6 {
		t.Fatalf("DetectionRate = %g", got)
	}
}
