package core

import (
	"testing"

	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// synthDists builds per-user training distributions with a known
// light/heavy structure: user i has all samples near scale[i].
func synthDists(scales []float64, seed uint64) []*stats.Empirical {
	r := xrand.New(seed)
	out := make([]*stats.Empirical, len(scales))
	for i, s := range scales {
		v := make([]float64, 400)
		for j := range v {
			v[j] = s * r.LogNormal(0, 0.3)
		}
		out[i] = stats.MustEmpirical(v)
	}
	return out
}

func TestConfigureFullDiversityPerUserThresholds(t *testing.T) {
	dists := synthDists([]float64{1, 10, 100, 1000}, 1)
	asn, err := Configure(dists, Policy{Percentile{0.99}, FullDiversity{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dists {
		if asn.Thresholds[i] != d.MustQuantile(0.99) {
			t.Fatalf("user %d threshold %g != own q99 %g", i, asn.Thresholds[i], d.MustQuantile(0.99))
		}
	}
	// Thresholds strictly increase with user scale here.
	for i := 1; i < len(dists); i++ {
		if asn.Thresholds[i] <= asn.Thresholds[i-1] {
			t.Fatalf("thresholds not ordered: %v", asn.Thresholds)
		}
	}
}

func TestConfigureHomogeneousSingleThreshold(t *testing.T) {
	dists := synthDists([]float64{1, 10, 100, 1000}, 2)
	asn, err := Configure(dists, Policy{Percentile{0.99}, Homogeneous{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(asn.Thresholds); i++ {
		if asn.Thresholds[i] != asn.Thresholds[0] {
			t.Fatal("homogeneous thresholds differ across users")
		}
	}
	// The global threshold equals the q99 of the merged distribution.
	merged, _ := stats.MergeEmpiricals(dists)
	if asn.Thresholds[0] != merged.MustQuantile(0.99) {
		t.Fatalf("global threshold %g != merged q99 %g", asn.Thresholds[0], merged.MustQuantile(0.99))
	}
}

func TestConfigureHomogeneousHurtsLightUsers(t *testing.T) {
	// The monoculture pathology (§6.2): the global threshold is far
	// above the light users' own tails.
	scales := []float64{1, 1, 1, 1, 1, 1, 1, 1, 500, 1000}
	dists := synthDists(scales, 3)
	homog, err := Configure(dists, Policy{Percentile{0.99}, Homogeneous{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	div, err := Configure(dists, Policy{Percentile{0.99}, FullDiversity{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // light users
		if homog.Thresholds[i] < 20*div.Thresholds[i] {
			t.Fatalf("light user %d: homogeneous threshold %g not ≫ own %g",
				i, homog.Thresholds[i], div.Thresholds[i])
		}
	}
}

func TestConfigurePartialDiversityBetweenExtremes(t *testing.T) {
	r := xrand.New(11)
	scales := make([]float64, 60)
	for i := range scales {
		scales[i] = r.LogNormal(2, 1.8)
	}
	dists := synthDists(scales, 4)
	homog, _ := Configure(dists, Policy{Percentile{0.99}, Homogeneous{}}, nil)
	part, err := Configure(dists, Policy{Percentile{0.99}, PartialDiversity{NumGroups: 8}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	div, _ := Configure(dists, Policy{Percentile{0.99}, FullDiversity{}}, nil)
	// Mean absolute log-distance from the user's own (diversity)
	// threshold: partial must sit strictly between homogeneous and
	// full diversity.
	dist := func(asn *Assignment) float64 {
		var s float64
		for i := range dists {
			d := asn.Thresholds[i] / div.Thresholds[i]
			if d < 1 {
				d = 1 / d
			}
			s += d
		}
		return s
	}
	if !(dist(part) < dist(homog)) {
		t.Fatalf("partial thresholds (dist %g) not closer to per-user than homogeneous (dist %g)",
			dist(part), dist(homog))
	}
	if len(part.Groups) != 8 {
		t.Fatalf("%d groups", len(part.Groups))
	}
	// Every user's threshold equals their group's threshold.
	for u := range dists {
		g := part.GroupOf(u)
		if g < 0 || part.Thresholds[u] != part.GroupThreshold[g] {
			t.Fatalf("user %d threshold %g != group %d threshold", u, part.Thresholds[u], g)
		}
	}
}

func TestConfigureErrors(t *testing.T) {
	if _, err := Configure(nil, Policy{Percentile{0.99}, Homogeneous{}}, nil); err == nil {
		t.Fatal("empty population accepted")
	}
	if _, err := Configure([]*stats.Empirical{nil}, Policy{Percentile{0.99}, Homogeneous{}}, nil); err == nil {
		t.Fatal("nil user distribution accepted")
	}
	dists := synthDists([]float64{1, 2}, 5)
	if _, err := Configure(dists, Policy{UtilityOptimal{W: 0.4}, Homogeneous{}}, nil); err == nil {
		t.Fatal("utility heuristic without attack magnitudes accepted")
	}
	if _, err := Configure(dists, Policy{Percentile{0.99}, PartialDiversity{NumGroups: 0}}, nil); err == nil {
		t.Fatal("invalid grouping accepted")
	}
}

func TestBestUsersAndOverlap(t *testing.T) {
	asn := &Assignment{Thresholds: []float64{50, 3, 40, 1, 2, 60}}
	best := asn.BestUsers(3)
	want := []int{3, 4, 1}
	for i := range want {
		if best[i] != want[i] {
			t.Fatalf("BestUsers = %v, want %v", best, want)
		}
	}
	if got := asn.BestUsers(100); len(got) != 6 {
		t.Fatalf("BestUsers(100) length %d", len(got))
	}
	if ov := Overlap([]int{1, 2, 3}, []int{3, 4, 1}); ov != 2 {
		t.Fatalf("Overlap = %d", ov)
	}
	if ov := Overlap(nil, []int{1}); ov != 0 {
		t.Fatalf("Overlap(nil) = %d", ov)
	}
}

// TestBestUsersDifferAcrossFeatures reproduces Table 2's qualitative
// finding on generated data: the 10 lowest-threshold users for TCP
// and for UDP overlap only partially.
func TestBestUsersDifferAcrossFeatures(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	pop := trace.MustPopulation(trace.Config{Users: 120, Weeks: 1, Seed: 17})
	var tcpD, udpD []*stats.Empirical
	for _, u := range pop.Users {
		m := u.Series()
		td, err := m.Distribution(features.TCP, 0, m.Bins())
		if err != nil {
			t.Fatal(err)
		}
		ud, err := m.Distribution(features.UDP, 0, m.Bins())
		if err != nil {
			t.Fatal(err)
		}
		tcpD = append(tcpD, td)
		udpD = append(udpD, ud)
	}
	pol := Policy{Percentile{0.99}, FullDiversity{}}
	at, err := Configure(tcpD, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	au, err := Configure(udpD, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	ov := Overlap(at.BestUsers(10), au.BestUsers(10))
	if ov > 8 {
		t.Fatalf("best-user lists overlap %d/10; expected partial overlap (Table 2)", ov)
	}
}

func TestPolicyName(t *testing.T) {
	p := Policy{Percentile{0.99}, PartialDiversity{NumGroups: 8}}
	if p.Name() != "percentile(99)/8-partial" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestGroupOfMissing(t *testing.T) {
	asn := &Assignment{Groups: [][]int{{0}, {1}}}
	if asn.GroupOf(5) != -1 {
		t.Fatal("GroupOf(missing) != -1")
	}
}
