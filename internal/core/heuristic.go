package core

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Heuristic selects an alarm threshold from a training distribution.
// The attack argument supplies representative additive attack
// magnitudes for heuristics that optimize a detection objective
// (utility, F-measure); percentile- and moment-based heuristics
// ignore it. Implementations must be deterministic.
type Heuristic interface {
	// Name identifies the heuristic in reports and wire messages.
	Name() string
	// Threshold computes the alarm threshold for a (user or group)
	// training distribution.
	Threshold(train *stats.Empirical, attack []float64) (float64, error)
}

// Percentile is the paper's default heuristic: threshold at the q-th
// quantile of the training distribution, giving explicit control of
// the false-positive rate ("a common choice by IT operators today is
// to roughly target the 99th percentile value").
type Percentile struct {
	// Q is the quantile in [0, 1], e.g. 0.99.
	Q float64
}

// Name implements Heuristic.
func (p Percentile) Name() string { return fmt.Sprintf("percentile(%g)", p.Q*100) }

// Threshold implements Heuristic.
func (p Percentile) Threshold(train *stats.Empirical, _ []float64) (float64, error) {
	return train.Quantile(p.Q)
}

// MeanSigma sets the threshold at mean + K standard deviations, the
// "outliers are the mean plus a few standard deviations" heuristic
// the paper lists in §4.
type MeanSigma struct {
	// K is the number of standard deviations above the mean.
	K float64
}

// Name implements Heuristic.
func (m MeanSigma) Name() string { return fmt.Sprintf("mean+%gσ", m.K) }

// Threshold implements Heuristic.
func (m MeanSigma) Threshold(train *stats.Empirical, _ []float64) (float64, error) {
	if train == nil || train.N() == 0 {
		return 0, stats.ErrNoSamples
	}
	return train.Mean() + m.K*train.StdDev(), nil
}

// UtilityOptimal picks the threshold maximizing the paper's utility
//
//	U(T) = 1 − [w·FN(T) + (1−w)·FP(T)]
//
// where FP(T) = P(g > T) on the training distribution and FN(T) is
// the average over the supplied attack magnitudes b of P(g + b ≤ T).
// This is the "picking a threshold to optimize a utility function"
// heuristic of §4 and the one used for Fig 3(a) with w = 0.4.
type UtilityOptimal struct {
	// W is the false-negative weight in [0, 1].
	W float64
}

// Name implements Heuristic.
func (u UtilityOptimal) Name() string { return fmt.Sprintf("utility(w=%g)", u.W) }

// Threshold implements Heuristic.
func (u UtilityOptimal) Threshold(train *stats.Empirical, attack []float64) (float64, error) {
	if u.W < 0 || u.W > 1 {
		return 0, fmt.Errorf("core: utility weight %g outside [0, 1]", u.W)
	}
	return optimizeOverCandidates(train, attack, func(fp, fn float64) float64 {
		return stats.Utility(fn, fp, u.W)
	})
}

// FMeasureOptimal picks the threshold maximizing the F1 measure (the
// harmonic mean of precision and recall, §4 footnote 1), assuming
// attacked and benign windows are equally likely a priori.
type FMeasureOptimal struct{}

// Name implements Heuristic.
func (FMeasureOptimal) Name() string { return "f-measure" }

// Threshold implements Heuristic.
func (FMeasureOptimal) Threshold(train *stats.Empirical, attack []float64) (float64, error) {
	return optimizeOverCandidates(train, attack, func(fp, fn float64) float64 {
		recall := 1 - fn
		// Equal priors: P(attack) = P(benign) = 0.5, so precision =
		// recall / (recall + fp).
		if recall+fp == 0 {
			return 0
		}
		precision := recall / (recall + fp)
		return stats.HarmonicMean(precision, recall)
	})
}

// optimizeOverCandidates scans candidate thresholds — every training
// sample and every sample shifted by each attack magnitude — and
// returns the one maximizing score(fp, fn). Ties prefer the smallest
// threshold (more sensitive detector).
func optimizeOverCandidates(train *stats.Empirical, attack []float64, score func(fp, fn float64) float64) (float64, error) {
	if train == nil || train.N() == 0 {
		return 0, stats.ErrNoSamples
	}
	if len(attack) == 0 {
		return 0, fmt.Errorf("core: objective-optimizing heuristic requires attack magnitudes")
	}
	// Iterate by index: Samples() would allocate a defensive copy on
	// every Configure call in the hot path.
	candSet := make(map[float64]struct{}, train.N()*2)
	for i := 0; i < train.N(); i++ {
		candSet[train.At(i)] = struct{}{}
	}
	// Attack-shifted quantile points matter when attacks are larger
	// than the benign range; add a coarse set to keep this O(n).
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		base := train.MustQuantile(q)
		for _, b := range attack {
			candSet[base+b] = struct{}{}
		}
	}
	cands := make([]float64, 0, len(candSet))
	for c := range candSet {
		cands = append(cands, c)
	}
	sort.Float64s(cands)

	bestT, bestScore := cands[0], -1.0
	for _, t := range cands {
		fp := train.TailProb(t)
		var fn float64
		for _, b := range attack {
			fn += train.CDF(t - b) // P(g + b <= t) = P(g <= t - b)
		}
		fn /= float64(len(attack))
		if s := score(fp, fn); s > bestScore+1e-15 {
			bestT, bestScore = t, s
		}
	}
	return bestT, nil
}
