package core

import (
	"fmt"

	"repro/internal/stats"
)

// Heuristic selects an alarm threshold from a training distribution.
// The attack argument supplies representative additive attack
// magnitudes for heuristics that optimize a detection objective
// (utility, F-measure); percentile- and moment-based heuristics
// ignore it. Implementations must be deterministic.
type Heuristic interface {
	// Name identifies the heuristic in reports and wire messages.
	Name() string
	// Threshold computes the alarm threshold for a (user or group)
	// training distribution.
	Threshold(train *stats.Empirical, attack []float64) (float64, error)
}

// Percentile is the paper's default heuristic: threshold at the q-th
// quantile of the training distribution, giving explicit control of
// the false-positive rate ("a common choice by IT operators today is
// to roughly target the 99th percentile value").
type Percentile struct {
	// Q is the quantile in [0, 1], e.g. 0.99.
	Q float64
}

// Name implements Heuristic.
func (p Percentile) Name() string { return fmt.Sprintf("percentile(%g)", p.Q*100) }

// Threshold implements Heuristic.
func (p Percentile) Threshold(train *stats.Empirical, _ []float64) (float64, error) {
	return train.Quantile(p.Q)
}

// MeanSigma sets the threshold at mean + K standard deviations, the
// "outliers are the mean plus a few standard deviations" heuristic
// the paper lists in §4.
type MeanSigma struct {
	// K is the number of standard deviations above the mean.
	K float64
}

// Name implements Heuristic.
func (m MeanSigma) Name() string { return fmt.Sprintf("mean+%gσ", m.K) }

// Threshold implements Heuristic.
func (m MeanSigma) Threshold(train *stats.Empirical, _ []float64) (float64, error) {
	if train == nil || train.N() == 0 {
		return 0, stats.ErrNoSamples
	}
	return train.Mean() + m.K*train.StdDev(), nil
}

// FrontierScorer is a Heuristic that selects its threshold by
// maximizing an objective over the threshold frontier (stats.Frontier
// — the exact ⟨threshold, fp, fn⟩ triples of every candidate
// threshold). Implementations live in this package; external callers
// may type-assert on it to share one frontier build across several
// objective heuristics (see analysis.Workspace.Frontiers).
type FrontierScorer interface {
	Heuristic
	// Score evaluates the objective at one frontier operating point;
	// the heuristic's threshold is the frontier point maximizing it.
	Score(fp, fn float64) float64
	// validateScorer checks the heuristic's parameters, returning the
	// same error Threshold would.
	validateScorer() error
}

// UtilityOptimal picks the threshold maximizing the paper's utility
//
//	U(T) = 1 − [w·FN(T) + (1−w)·FP(T)]
//
// where FP(T) = P(g > T) on the training distribution and FN(T) is
// the average over the supplied attack magnitudes b of P(g + b ≤ T).
// This is the "picking a threshold to optimize a utility function"
// heuristic of §4 and the one used for Fig 3(a) with w = 0.4.
type UtilityOptimal struct {
	// W is the false-negative weight in [0, 1].
	W float64
}

// Name implements Heuristic.
func (u UtilityOptimal) Name() string { return fmt.Sprintf("utility(w=%g)", u.W) }

// Score implements FrontierScorer.
func (u UtilityOptimal) Score(fp, fn float64) float64 {
	return stats.Utility(fn, fp, u.W)
}

func (u UtilityOptimal) validateScorer() error {
	if u.W < 0 || u.W > 1 {
		return fmt.Errorf("core: utility weight %g outside [0, 1]", u.W)
	}
	return nil
}

// Threshold implements Heuristic.
func (u UtilityOptimal) Threshold(train *stats.Empirical, attack []float64) (float64, error) {
	if err := u.validateScorer(); err != nil {
		return 0, err
	}
	return maximizeOverFrontier(train, attack, u.Score)
}

// FMeasureOptimal picks the threshold maximizing the F1 measure (the
// harmonic mean of precision and recall, §4 footnote 1), assuming
// attacked and benign windows are equally likely a priori.
type FMeasureOptimal struct{}

// Name implements Heuristic.
func (FMeasureOptimal) Name() string { return "f-measure" }

// Score implements FrontierScorer.
func (FMeasureOptimal) Score(fp, fn float64) float64 {
	recall := 1 - fn
	// Equal priors: P(attack) = P(benign) = 0.5, so precision =
	// recall / (recall + fp).
	if recall+fp == 0 {
		return 0
	}
	precision := recall / (recall + fp)
	return stats.HarmonicMean(precision, recall)
}

func (FMeasureOptimal) validateScorer() error { return nil }

// Threshold implements Heuristic.
func (FMeasureOptimal) Threshold(train *stats.Empirical, attack []float64) (float64, error) {
	return maximizeOverFrontier(train, attack, FMeasureOptimal{}.Score)
}

// maximizeOverFrontier builds a (pooled) threshold frontier over the
// training distribution and returns the candidate maximizing
// score(fp, fn). The frontier enumerates exactly the candidate set
// the pre-frontier brute-force scan used — every training sample plus
// every coarse attack-shifted quantile — so thresholds are
// bit-identical to it; the merge-sweep just computes all operating
// points in one pass instead of 1+|attack| binary searches per
// candidate over a freshly built, sorted candidate map.
func maximizeOverFrontier(train *stats.Empirical, attack []float64, score func(fp, fn float64) float64) (float64, error) {
	if train == nil || train.N() == 0 {
		return 0, stats.ErrNoSamples
	}
	if len(attack) == 0 {
		return 0, fmt.Errorf("core: objective-optimizing heuristic requires attack magnitudes")
	}
	fr, err := stats.AcquireFrontier(train, attack)
	if err != nil {
		return 0, err
	}
	defer fr.Release()
	return fr.Maximize(score), nil
}
