package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/stats"
)

// streamTrain builds a heavy-tail-ish population of training
// distributions: mostly small integer counts with a few heavy users.
func streamTrain(rng *rand.Rand, users int) []*stats.Empirical {
	dists := make([]*stats.Empirical, users)
	for u := range dists {
		n := 20 + rng.Intn(30)
		scale := 1.0
		if rng.Intn(7) == 0 {
			scale = 40
		}
		col := make([]float64, n)
		for i := range col {
			col[i] = math.Floor(rng.ExpFloat64() * 6 * scale)
		}
		sort.Float64s(col)
		dists[u] = stats.MustEmpirical(col)
	}
	return dists
}

// foldPlan runs the full streaming protocol over dists in the given
// user order with the given worker count.
func foldPlan(t *testing.T, policy Policy, dists []*stats.Empirical, attack []float64, order []int, workers int) *Assignment {
	t.Helper()
	stat := make([]float64, len(dists))
	for u, d := range dists {
		stat[u] = d.MustQuantile(0.99)
	}
	plan, err := NewStreamPlan(policy, stat, attack)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.ForEachErr(len(order), workers, func(i int) error {
		u := order[i]
		return plan.FoldUser(u, dists[u])
	}); err != nil {
		t.Fatal(err)
	}
	asn, err := plan.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return asn
}

// TestStreamPlanMatchesConfigure pins the streaming assignment
// DeepEqual to ConfigureWith for every policy shape the experiment
// runners use, across fold orders and a parallel fold. Run under
// -race this is also the fold's race guard: workers is forced above 1
// even on single-CPU hosts.
func TestStreamPlanMatchesConfigure(t *testing.T) {
	attack := []float64{3, 10, 45, 200}
	heuristics := []Heuristic{
		Percentile{Q: 0.99},
		UtilityOptimal{W: 0.4},
		FMeasureOptimal{},
	}
	groupings := []Grouping{
		Homogeneous{},
		FullDiversity{},
		PartialDiversity{NumGroups: 4},
		KMeansGrouping{K: 3, Seed: 9},
	}
	for _, seed := range []int64{53, 87} {
		rng := rand.New(rand.NewSource(seed))
		dists := streamTrain(rng, 37)
		for _, h := range heuristics {
			for _, grp := range groupings {
				policy := Policy{Heuristic: h, Grouping: grp}
				want, err := ConfigureWith(ConfigureInput{Train: dists, Policy: policy, Attack: attack})
				if err != nil {
					t.Fatalf("%s: %v", policy.Name(), err)
				}
				order := rng.Perm(len(dists))
				for _, workers := range []int{1, 4} {
					got := foldPlan(t, policy, dists, attack, order, workers)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d %s workers=%d: streaming assignment diverges from ConfigureWith",
							seed, policy.Name(), workers)
					}
					for i := range got.Thresholds {
						if math.Float64bits(got.Thresholds[i]) != math.Float64bits(want.Thresholds[i]) {
							t.Fatalf("%s: threshold %d bits differ", policy.Name(), i)
						}
					}
				}
			}
		}
	}
}

// TestStreamPlanNoAttack covers the Percentile policies the
// nil-attack runners (Fig4, Table2) build assignments with.
func TestStreamPlanNoAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dists := streamTrain(rng, 21)
	for _, grp := range []Grouping{Homogeneous{}, FullDiversity{}, PartialDiversity{NumGroups: 8}} {
		policy := Policy{Heuristic: Percentile{Q: 0.99}, Grouping: grp}
		want, err := Configure(dists, policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := foldPlan(t, policy, dists, nil, rng.Perm(len(dists)), 3)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: nil-attack streaming assignment diverges", policy.Name())
		}
	}
}

func TestStreamPlanErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dists := streamTrain(rng, 8)
	stat := make([]float64, len(dists))
	for u, d := range dists {
		stat[u] = d.MustQuantile(0.99)
	}

	if _, err := NewStreamPlan(Policy{Heuristic: Percentile{Q: 0.99}, Grouping: Homogeneous{}}, nil, nil); err == nil {
		t.Fatal("empty population accepted")
	}

	// MeanSigma cannot stream through merged groups...
	policy := Policy{Heuristic: MeanSigma{K: 3}, Grouping: Homogeneous{}}
	if _, err := NewStreamPlan(policy, stat, nil); err == nil ||
		!strings.Contains(err.Error(), "unsupported on multi-user groups") {
		t.Fatalf("MeanSigma on merged groups: err = %v", err)
	}
	// ...but is fine when every group is a singleton.
	policy.Grouping = FullDiversity{}
	want, err := Configure(dists, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := foldPlan(t, policy, dists, nil, rng.Perm(len(dists)), 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("MeanSigma singleton streaming diverges")
	}

	// A scorer without attack magnitudes must fail exactly like the
	// whole-heap path.
	plan, err := NewStreamPlan(Policy{Heuristic: UtilityOptimal{W: 0.4}, Grouping: Homogeneous{}}, stat, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u, d := range dists {
		if err := plan.FoldUser(u, d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := plan.Finish(); err == nil ||
		!strings.Contains(err.Error(), "requires attack magnitudes") {
		t.Fatalf("scorer without magnitudes: err = %v", err)
	}

	// Finish before the fold completes reports the shortfall.
	plan, err = NewStreamPlan(Policy{Heuristic: Percentile{Q: 0.99}, Grouping: Homogeneous{}}, stat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.FoldUser(0, dists[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Finish(); err == nil || !strings.Contains(err.Error(), "folded 1 of 8") {
		t.Fatalf("partial fold: err = %v", err)
	}

	// Out-of-range and empty users error rather than corrupt.
	if err := plan.FoldUser(99, dists[0]); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if err := plan.FoldUser(1, nil); err == nil || !strings.Contains(err.Error(), "no training data") {
		t.Fatalf("nil dist: err = %v", err)
	}
}
