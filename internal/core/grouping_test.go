package core

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func statVector(seed uint64, n int) []float64 {
	r := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.LogNormal(3, 2)
	}
	return v
}

func TestHomogeneousGrouping(t *testing.T) {
	stat := statVector(1, 50)
	groups, err := (Homogeneous{}).Groups(stat)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 50 {
		t.Fatalf("groups = %d x %d", len(groups), len(groups[0]))
	}
	if err := ValidatePartition(groups, 50); err != nil {
		t.Fatal(err)
	}
}

func TestFullDiversityGrouping(t *testing.T) {
	stat := statVector(2, 30)
	groups, err := (FullDiversity{}).Groups(stat)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 30 {
		t.Fatalf("%d groups", len(groups))
	}
	for i, g := range groups {
		if len(g) != 1 || g[0] != i {
			t.Fatalf("group %d = %v", i, g)
		}
	}
}

func TestPartialDiversityPartition(t *testing.T) {
	stat := statVector(3, 350)
	pd := PartialDiversity{NumGroups: 8}
	groups, err := pd.Groups(stat)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Fatalf("%d groups, want 8", len(groups))
	}
	if err := ValidatePartition(groups, 350); err != nil {
		t.Fatal(err)
	}
	if pd.Name() != "8-partial" {
		t.Fatalf("Name = %q", pd.Name())
	}
}

func TestPartialDiversityHeavySplit(t *testing.T) {
	// The top-15% heavy users must be isolated from the body: no
	// group may contain both a bottom-85% and a top-15% user.
	stat := statVector(4, 200)
	groups, err := (PartialDiversity{NumGroups: 8}).Groups(stat)
	if err != nil {
		t.Fatal(err)
	}
	order := sortedIndices(stat)
	nHeavy := 200 * 15 / 100
	heavySet := map[int]bool{}
	for _, u := range order[200-nHeavy:] {
		heavySet[u] = true
	}
	for gi, g := range groups {
		hasHeavy, hasBody := false, false
		for _, u := range g {
			if heavySet[u] {
				hasHeavy = true
			} else {
				hasBody = true
			}
		}
		if hasHeavy && hasBody {
			t.Fatalf("group %d mixes heavy and body users", gi)
		}
	}
}

func TestPartialDiversityGroupsAreContiguousInStat(t *testing.T) {
	// Each group must cover a contiguous range of the sorted tail
	// statistic (quantile split), so group thresholds are meaningful.
	stat := statVector(5, 97)
	groups, err := (PartialDiversity{NumGroups: 5}).Groups(stat)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		lo, hi := stat[g[0]], stat[g[0]]
		for _, u := range g {
			if stat[u] < lo {
				lo = stat[u]
			}
			if stat[u] > hi {
				hi = stat[u]
			}
		}
		// No user outside the group may fall strictly inside (lo, hi).
		inGroup := map[int]bool{}
		for _, u := range g {
			inGroup[u] = true
		}
		for u, s := range stat {
			if !inGroup[u] && s > lo && s < hi {
				t.Fatalf("group %d range (%g, %g) contains outside user %d (%g)", gi, lo, hi, u, s)
			}
		}
	}
}

func TestPartialDiversitySmallPopulations(t *testing.T) {
	// More groups than users must still produce a valid partition.
	for _, n := range []int{2, 3, 5, 9} {
		stat := statVector(uint64(n), n)
		groups, err := (PartialDiversity{NumGroups: 8}).Groups(stat)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := ValidatePartition(groups, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPartialDiversityErrors(t *testing.T) {
	if _, err := (PartialDiversity{NumGroups: 1}).Groups(statVector(1, 10)); err == nil {
		t.Fatal("1 group accepted")
	}
	if _, err := (PartialDiversity{NumGroups: 4, HeavyFraction: 1.5}).Groups(statVector(1, 10)); err == nil {
		t.Fatal("bad heavy fraction accepted")
	}
	if _, err := (PartialDiversity{NumGroups: 4}).Groups(nil); err == nil {
		t.Fatal("empty population accepted")
	}
}

func TestPartialDiversityProperty(t *testing.T) {
	f := func(seed uint64, nRaw, gRaw uint8) bool {
		n := int(nRaw%120) + 2
		k := int(gRaw%10) + 2
		groups, err := (PartialDiversity{NumGroups: k}).Groups(statVector(seed, n))
		if err != nil {
			return false
		}
		return ValidatePartition(groups, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansGrouping(t *testing.T) {
	stat := statVector(6, 100)
	groups, err := (KMeansGrouping{K: 4, Seed: 9}).Groups(stat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePartition(groups, 100); err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 || len(groups) > 4 {
		t.Fatalf("%d groups", len(groups))
	}
}

func TestKMeansGroupingKAboveN(t *testing.T) {
	groups, err := (KMeansGrouping{K: 10, Seed: 1}).Groups([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePartition(groups, 3); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePartitionRejects(t *testing.T) {
	cases := map[string][][]int{
		"missing user":   {{0, 1}},
		"duplicate user": {{0, 1}, {1, 2}},
		"out of range":   {{0, 1, 2}, {5}},
		"empty group":    {{0, 1, 2}, {}},
	}
	for name, groups := range cases {
		if err := ValidatePartition(groups, 3); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := ValidatePartition([][]int{{2, 0}, {1}}, 3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

func TestGroupingNames(t *testing.T) {
	for _, g := range []Grouping{Homogeneous{}, FullDiversity{}, PartialDiversity{NumGroups: 8}, KMeansGrouping{K: 3}} {
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
}
