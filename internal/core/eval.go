package core

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/stats"
)

// EvalInput bundles everything needed to score one policy on one
// feature, following the paper's methodology (§6.1): thresholds are
// learned on a training week and applied to the following test week.
type EvalInput struct {
	// Train holds each user's training-week feature series. It may be
	// nil when TrainDists or Assignment is supplied instead.
	Train [][]float64
	// TrainDists optionally supplies pre-built training
	// distributions, skipping the per-call copy-and-sort of Train.
	// The analysis workspace passes its memoized per-user
	// distributions here. When set, Train is ignored for
	// configuration (Test still defines the population size).
	TrainDists []*stats.Empirical
	// Test holds each user's test-week feature series (same user
	// order as Train).
	Test [][]float64
	// Attack optionally holds each user's additive attack overlay,
	// aligned with Test; Attack == nil or Attack[i] == nil means no
	// attack on that user. Windows with a positive overlay are the
	// positives for FN accounting.
	Attack [][]float64
	// AttackMagnitudes supplies representative per-window attack
	// sizes to objective-optimizing heuristics (UtilityOptimal,
	// FMeasureOptimal). May be nil for Percentile / MeanSigma.
	AttackMagnitudes []float64
	// Policy is the configuration policy under evaluation.
	Policy Policy
	// Assignment optionally supplies a pre-configured assignment
	// (e.g. a cached one); when set, Configure is skipped entirely
	// and Policy is only used for labeling.
	Assignment *Assignment
	// Workers bounds the per-user scoring fan-out; < 1 means one
	// worker per CPU. Results are deterministic regardless of the
	// worker count.
	Workers int
}

// EvalResult is the outcome of one policy evaluation.
type EvalResult struct {
	// Assignment records the thresholds and groups the policy chose.
	Assignment *Assignment
	// Points holds one operating point per user.
	Points []OperatingPoint
}

// EvaluatePolicy learns thresholds on Train with the policy (or
// adopts a pre-configured Assignment) and scores them on Test
// (+Attack). The per-user scoring loop fans out over a bounded
// worker pool; each worker writes only its own user's slot, so the
// result is identical to the serial evaluation.
func EvaluatePolicy(in EvalInput) (*EvalResult, error) {
	n := len(in.Test)
	if n == 0 {
		return nil, fmt.Errorf("core: empty test population")
	}
	if in.Attack != nil && len(in.Attack) != n {
		return nil, fmt.Errorf("core: attack population %d != %d", len(in.Attack), n)
	}
	asn := in.Assignment
	if asn == nil {
		dists := in.TrainDists
		if dists == nil {
			if len(in.Train) != n {
				return nil, fmt.Errorf("core: train/test population mismatch: %d vs %d", len(in.Train), n)
			}
			dists = make([]*stats.Empirical, n)
			err := par.ForEachErr(n, in.Workers, func(i int) error {
				d, err := stats.NewEmpirical(in.Train[i])
				if err != nil {
					return fmt.Errorf("core: user %d training series: %w", i, err)
				}
				dists[i] = d
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else if len(dists) != n {
			return nil, fmt.Errorf("core: train/test population mismatch: %d vs %d", len(dists), n)
		}
		var err error
		if asn, err = Configure(dists, in.Policy, in.AttackMagnitudes); err != nil {
			return nil, err
		}
	}
	if len(asn.Thresholds) != n {
		return nil, fmt.Errorf("core: assignment covers %d users, test has %d", len(asn.Thresholds), n)
	}
	res := &EvalResult{Assignment: asn, Points: make([]OperatingPoint, n)}
	err := par.ForEachErr(n, in.Workers, func(i int) error {
		var attack []float64
		if in.Attack != nil {
			attack = in.Attack[i]
		}
		pt, err := ScorePoint(i, in.Test[i], attack, asn.Thresholds[i])
		if err != nil {
			return err
		}
		res.Points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ScorePoint scores one user's test column (plus optional additive
// attack overlay) against a threshold, returning the operating point
// EvaluatePolicy records for that user. It is the per-user unit of the
// scoring loop, exported so streaming evaluators can score a mapped
// snapshot shard by shard without materializing the whole test
// population.
func ScorePoint(u int, test, attack []float64, thr float64) (OperatingPoint, error) {
	conf, err := Evaluate(test, attack, thr)
	if err != nil {
		return OperatingPoint{}, fmt.Errorf("core: user %d: %w", u, err)
	}
	return OperatingPoint{
		User:      u,
		Threshold: thr,
		FP:        conf.FalsePositiveRate(),
		FN:        conf.FalseNegativeRate(),
		Confusion: conf,
	}, nil
}

// Utilities returns every user's utility for weight w.
func (r *EvalResult) Utilities(w float64) []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.Utility(w)
	}
	return out
}

// MeanUtility returns the system-wide utility: the average per-host
// utility across the population (§6.1 "system wide utility metric").
func (r *EvalResult) MeanUtility(w float64) float64 {
	return stats.Mean(r.Utilities(w))
}

// UtilityBoxplot summarizes the distribution of per-host utilities,
// the rendering of Fig 3(a).
func (r *EvalResult) UtilityBoxplot(w float64) (stats.Boxplot, error) {
	return stats.NewBoxplot(r.Utilities(w))
}

// TotalFalseAlarms sums false-positive windows across the population
// — the number of benign alerts arriving at the central IT console
// over the test period (Table 3).
func (r *EvalResult) TotalFalseAlarms() int {
	n := 0
	for _, p := range r.Points {
		n += p.Confusion.FP
	}
	return n
}

// FractionAlarming returns the fraction of users whose test period
// raised at least one true-positive alarm — the y-axis of Fig 4(a)
// ("the fraction of users that would have raised an alert" for a
// given attack).
func (r *EvalResult) FractionAlarming() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.Points {
		if p.Confusion.TP > 0 {
			n++
		}
	}
	return float64(n) / float64(len(r.Points))
}
