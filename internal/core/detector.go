// Package core implements the paper's primary contribution: the
// behavioral HIDS threshold detector, the threshold-selection
// heuristics, the configuration policies (homogeneous monoculture,
// full diversity, partial diversity), and the false-positive /
// false-negative / utility evaluation machinery of §3-§6.
//
// The pieces compose as in the paper:
//
//	policy   = heuristic × grouping            (§4)
//	Configure(users, policy)  -> per-user thresholds
//	Evaluate(test, attack, T) -> ⟨FP_i, FN_i⟩  (§6.1)
//	stats.Utility(FN, FP, w)  -> U_i           (§6.1)
package core

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/stats"
)

// Detector is a single-feature threshold anomaly detector: it raises
// an alert for any window whose feature value strictly exceeds the
// threshold (the paper's "if g + b > T, an alarm is raised").
type Detector struct {
	// Feature is the monitored traffic feature.
	Feature features.Feature
	// Threshold is the alarm threshold T_i^j.
	Threshold float64
}

// Alarm reports whether one window's feature value raises an alert.
func (d Detector) Alarm(value float64) bool { return value > d.Threshold }

// CountAlarms returns the number of alarming windows in series.
func (d Detector) CountAlarms(series []float64) int {
	n := 0
	for _, v := range series {
		if d.Alarm(v) {
			n++
		}
	}
	return n
}

// AlarmBins returns the indices of alarming windows; these are what a
// host agent batches to the central console.
func (d Detector) AlarmBins(series []float64) []int {
	var out []int
	for b, v := range series {
		if d.Alarm(v) {
			out = append(out, b)
		}
	}
	return out
}

// String describes the detector.
func (d Detector) String() string {
	return fmt.Sprintf("detector{%s > %.4g}", d.Feature, d.Threshold)
}

// Evaluate classifies every window of a test series against a
// threshold. attack[b] is the additive malicious traffic overlaid on
// window b (zero for benign windows); attack may be nil for an
// all-benign evaluation. The observable value of window b is
// benign[b] + attack[b], per the paper's additive threat model.
//
// Windows with attack > 0 are positives; an alarm on a positive
// window is a true positive, an alarm on a benign window a false
// positive.
func Evaluate(benign, attack []float64, threshold float64) (stats.Confusion, error) {
	if attack != nil && len(attack) != len(benign) {
		return stats.Confusion{}, fmt.Errorf("core: attack series length %d != benign %d", len(attack), len(benign))
	}
	var c stats.Confusion
	for b, g := range benign {
		var a float64
		if attack != nil {
			a = attack[b]
		}
		alarm := g+a > threshold
		switch {
		case a > 0 && alarm:
			c.TP++
		case a > 0 && !alarm:
			c.FN++
		case a == 0 && alarm:
			c.FP++
		default:
			c.TN++
		}
	}
	return c, nil
}

// FalsePositiveRate evaluates a threshold on an all-benign series.
func FalsePositiveRate(benign []float64, threshold float64) float64 {
	if len(benign) == 0 {
		return 0
	}
	d := Detector{Threshold: threshold}
	return float64(d.CountAlarms(benign)) / float64(len(benign))
}

// OperatingPoint is one user's ⟨FN_i, FP_i⟩ performance tuple (§6.1)
// plus the utility that summarizes it.
type OperatingPoint struct {
	User      int
	Threshold float64
	FP        float64
	FN        float64
	Confusion stats.Confusion
}

// Utility returns the paper's per-host utility U_i for weight w.
func (o OperatingPoint) Utility(w float64) float64 {
	return stats.Utility(o.FN, o.FP, w)
}

// DetectionRate returns 1 − FN_i, the y-axis of Fig 5.
func (o OperatingPoint) DetectionRate() float64 { return 1 - o.FN }
