package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func trainDist(seed uint64, n int) *stats.Empirical {
	r := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.LogNormal(3, 1)
	}
	return stats.MustEmpirical(v)
}

func TestPercentileHeuristic(t *testing.T) {
	tr := trainDist(1, 5000)
	h := Percentile{Q: 0.99}
	thr, err := h.Threshold(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MustQuantile(0.99); thr != got {
		t.Fatalf("threshold %g != q99 %g", thr, got)
	}
	// By construction the training FP rate is ~1%.
	if fp := tr.TailProb(thr); fp > 0.0102 {
		t.Fatalf("training FP = %g", fp)
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
}

func TestPercentileBadQ(t *testing.T) {
	tr := trainDist(2, 100)
	if _, err := (Percentile{Q: 1.5}).Threshold(tr, nil); err == nil {
		t.Fatal("q > 1 accepted")
	}
}

func TestMeanSigmaHeuristic(t *testing.T) {
	tr := stats.MustEmpirical([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	h := MeanSigma{K: 3}
	thr, err := h.Threshold(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 + 3*math.Sqrt(32.0/7.0)
	if math.Abs(thr-want) > 1e-12 {
		t.Fatalf("threshold = %g, want %g", thr, want)
	}
	if _, err := h.Threshold(nil, nil); err == nil {
		t.Fatal("nil training accepted")
	}
}

func TestUtilityOptimalBalancesErrors(t *testing.T) {
	tr := trainDist(3, 4000)
	attack := []float64{50, 100, 200}
	// With w = 0 only false positives matter: the optimal threshold
	// should have ~zero FP (at or above the max sample).
	thrFPOnly, err := (UtilityOptimal{W: 0}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	if fp := tr.TailProb(thrFPOnly); fp > 0.001 {
		t.Fatalf("w=0 threshold has FP %g", fp)
	}
	// With w = 1 only detection matters: threshold collapses low.
	thrFNOnly, err := (UtilityOptimal{W: 1}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	if thrFNOnly >= thrFPOnly {
		t.Fatalf("w=1 threshold %g not below w=0 threshold %g", thrFNOnly, thrFPOnly)
	}
	// Intermediate w sits in between (weakly).
	thrMid, err := (UtilityOptimal{W: 0.4}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	if thrMid < thrFNOnly-1e-9 || thrMid > thrFPOnly+1e-9 {
		t.Fatalf("w=0.4 threshold %g outside [%g, %g]", thrMid, thrFNOnly, thrFPOnly)
	}
}

func TestUtilityOptimalAchievesBestScore(t *testing.T) {
	// Exhaustively verify optimality over a fine threshold grid.
	tr := trainDist(5, 800)
	attack := []float64{30, 80}
	w := 0.4
	thr, err := (UtilityOptimal{W: w}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	score := func(T float64) float64 {
		fp := tr.TailProb(T)
		fn := (tr.CDF(T-30) + tr.CDF(T-80)) / 2
		return stats.Utility(fn, fp, w)
	}
	best := score(thr)
	for T := 0.0; T < tr.Max()+100; T += 0.5 {
		if s := score(T); s > best+1e-9 {
			t.Fatalf("grid threshold %g scores %g > chosen %g scoring %g", T, s, thr, best)
		}
	}
}

func TestUtilityOptimalErrors(t *testing.T) {
	tr := trainDist(6, 100)
	if _, err := (UtilityOptimal{W: 2}).Threshold(tr, []float64{10}); err == nil {
		t.Fatal("w > 1 accepted")
	}
	if _, err := (UtilityOptimal{W: 0.4}).Threshold(tr, nil); err == nil {
		t.Fatal("nil attack accepted")
	}
	if _, err := (UtilityOptimal{W: 0.4}).Threshold(nil, []float64{10}); err == nil {
		t.Fatal("nil training accepted")
	}
}

func TestFMeasureOptimal(t *testing.T) {
	tr := trainDist(7, 2000)
	thr, err := (FMeasureOptimal{}).Threshold(tr, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	// F-measure of the chosen threshold must beat a clearly bad one.
	f1 := func(T float64) float64 {
		fp := tr.TailProb(T)
		recall := 1 - tr.CDF(T-100)
		if recall+fp == 0 {
			return 0
		}
		p := recall / (recall + fp)
		return stats.HarmonicMean(p, recall)
	}
	if f1(thr) < f1(tr.Max()*10) {
		t.Fatalf("chosen threshold %g has F1 %g below trivial threshold", thr, f1(thr))
	}
	if f1(thr) < f1(0) {
		t.Fatalf("chosen threshold %g has F1 %g below zero threshold", thr, f1(thr))
	}
	if (FMeasureOptimal{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	tr := trainDist(8, 1000)
	attack := []float64{10, 40}
	for _, h := range []Heuristic{
		Percentile{Q: 0.99},
		MeanSigma{K: 3},
		UtilityOptimal{W: 0.4},
		FMeasureOptimal{},
	} {
		a, err := h.Threshold(tr, attack)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		b, err := h.Threshold(tr, attack)
		if err != nil || a != b {
			t.Fatalf("%s not deterministic: %g vs %g (%v)", h.Name(), a, b, err)
		}
	}
}
