package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// optimizeOverCandidates is the pre-frontier brute-force reference,
// kept verbatim: it scans candidate thresholds — every training
// sample and every coarse attack-shifted quantile — through a dedup
// map, a sort, and 1+|attack| binary searches per candidate. The
// frontier engine must reproduce it bit for bit (same candidate set,
// same fp/fn arithmetic, same tie-breaking); the property tests below
// pin that.
func optimizeOverCandidates(train *stats.Empirical, attack []float64, score func(fp, fn float64) float64) (float64, error) {
	if train == nil || train.N() == 0 {
		return 0, stats.ErrNoSamples
	}
	if len(attack) == 0 {
		return 0, fmt.Errorf("core: objective-optimizing heuristic requires attack magnitudes")
	}
	candSet := make(map[float64]struct{}, train.N()*2)
	for i := 0; i < train.N(); i++ {
		candSet[train.At(i)] = struct{}{}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		base := train.MustQuantile(q)
		for _, b := range attack {
			candSet[base+b] = struct{}{}
		}
	}
	cands := make([]float64, 0, len(candSet))
	for c := range candSet {
		cands = append(cands, c)
	}
	sort.Float64s(cands)

	bestT, bestScore := cands[0], -1.0
	for _, t := range cands {
		fp := train.TailProb(t)
		var fn float64
		for _, b := range attack {
			fn += train.CDF(t - b) // P(g + b <= t) = P(g <= t - b)
		}
		fn /= float64(len(attack))
		if s := score(fp, fn); s > bestScore+1e-15 {
			bestT, bestScore = t, s
		}
	}
	return bestT, nil
}

// randomTrainAttack generates one randomized scenario: a training
// distribution mixing continuous and heavily duplicated integer
// samples (real feature columns are counts, so candidate dedup must
// be exercised), and an attack set spanning magnitudes from inside
// the benign range to far beyond it.
func randomTrainAttack(r *xrand.Source) (*stats.Empirical, []float64) {
	n := 20 + int(r.Uint64()%400)
	v := make([]float64, n)
	for i := range v {
		x := r.LogNormal(2+2*r.Float64(), 0.3+1.5*r.Float64())
		if r.Uint64()%2 == 0 {
			x = math.Floor(x) // force duplicate candidate values
		}
		v[i] = x
	}
	k := 1 + int(r.Uint64()%30)
	attack := make([]float64, k)
	for i := range attack {
		attack[i] = math.Exp(r.Float64() * 12) // 1 .. ~160k
		if r.Uint64()%4 == 0 {
			attack[i] = math.Floor(attack[i])
		}
	}
	return stats.MustEmpirical(v), attack
}

// TestFrontierThresholdsMatchBruteForce pins the frontier-based
// utility and F-measure thresholds bit-identical to the brute-force
// reference across random distributions × attack sets × weights.
func TestFrontierThresholdsMatchBruteForce(t *testing.T) {
	r := xrand.New(0xf407)
	for trial := 0; trial < 300; trial++ {
		tr, attack := randomTrainAttack(r)
		w := r.Float64()
		u := UtilityOptimal{W: w}
		got, err := u.Threshold(tr, attack)
		if err != nil {
			t.Fatalf("trial %d: utility: %v", trial, err)
		}
		want, err := optimizeOverCandidates(tr, attack, u.Score)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: utility(w=%g) threshold %v != brute force %v (n=%d, %d magnitudes)",
				trial, w, got, want, tr.N(), len(attack))
		}
		fm := FMeasureOptimal{}
		got, err = fm.Threshold(tr, attack)
		if err != nil {
			t.Fatalf("trial %d: f-measure: %v", trial, err)
		}
		want, err = optimizeOverCandidates(tr, attack, fm.Score)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: f-measure threshold %v != brute force %v", trial, got, want)
		}
	}
}

// TestConfigureFrontierFastPathIdentical pins ConfigureWith's cached
// per-user-frontier fast path to plain Configure for every grouping,
// including the invalid-parameter fallback.
func TestConfigureFrontierFastPathIdentical(t *testing.T) {
	r := xrand.New(99)
	n := 24
	dists := make([]*stats.Empirical, n)
	for u := range dists {
		v := make([]float64, 120)
		for i := range v {
			v[i] = math.Floor(r.LogNormal(2+float64(u)*0.1, 1))
		}
		dists[u] = stats.MustEmpirical(v)
	}
	attack := []float64{3, 40, 900}
	fronts := make([]*stats.Frontier, n)
	for u := range fronts {
		fr, err := stats.NewFrontier(dists[u], attack)
		if err != nil {
			t.Fatal(err)
		}
		fronts[u] = fr
	}
	for _, h := range []Heuristic{UtilityOptimal{W: 0.4}, FMeasureOptimal{}} {
		for _, g := range []Grouping{FullDiversity{}, Homogeneous{}, PartialDiversity{NumGroups: 4}} {
			pol := Policy{Heuristic: h, Grouping: g}
			plain, err := Configure(dists, pol, attack)
			if err != nil {
				t.Fatalf("%s: %v", pol.Name(), err)
			}
			fast, err := ConfigureWith(ConfigureInput{
				Train: dists, Policy: pol, Attack: attack, UserFrontiers: fronts,
			})
			if err != nil {
				t.Fatalf("%s fast path: %v", pol.Name(), err)
			}
			for u := range plain.Thresholds {
				if plain.Thresholds[u] != fast.Thresholds[u] {
					t.Fatalf("%s: user %d threshold %v != %v with cached frontiers",
						pol.Name(), u, plain.Thresholds[u], fast.Thresholds[u])
				}
			}
		}
	}
	// Invalid scorer parameters must still surface the slow path's
	// error, not silently take the fast path.
	bad := Policy{Heuristic: UtilityOptimal{W: 2}, Grouping: FullDiversity{}}
	if _, err := ConfigureWith(ConfigureInput{
		Train: dists, Policy: bad, Attack: attack, UserFrontiers: fronts,
	}); err == nil {
		t.Fatal("invalid utility weight accepted via cached frontiers")
	}
	// Frontier slice misaligned with the population is rejected.
	if _, err := ConfigureWith(ConfigureInput{
		Train: dists, Policy: Policy{Heuristic: UtilityOptimal{W: 0.4}, Grouping: FullDiversity{}},
		Attack: attack, UserFrontiers: fronts[:3],
	}); err == nil {
		t.Fatal("misaligned UserFrontiers accepted")
	}
}

func trainDist(seed uint64, n int) *stats.Empirical {
	r := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.LogNormal(3, 1)
	}
	return stats.MustEmpirical(v)
}

func TestPercentileHeuristic(t *testing.T) {
	tr := trainDist(1, 5000)
	h := Percentile{Q: 0.99}
	thr, err := h.Threshold(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MustQuantile(0.99); thr != got {
		t.Fatalf("threshold %g != q99 %g", thr, got)
	}
	// By construction the training FP rate is ~1%.
	if fp := tr.TailProb(thr); fp > 0.0102 {
		t.Fatalf("training FP = %g", fp)
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
}

func TestPercentileBadQ(t *testing.T) {
	tr := trainDist(2, 100)
	if _, err := (Percentile{Q: 1.5}).Threshold(tr, nil); err == nil {
		t.Fatal("q > 1 accepted")
	}
}

func TestMeanSigmaHeuristic(t *testing.T) {
	tr := stats.MustEmpirical([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	h := MeanSigma{K: 3}
	thr, err := h.Threshold(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 + 3*math.Sqrt(32.0/7.0)
	if math.Abs(thr-want) > 1e-12 {
		t.Fatalf("threshold = %g, want %g", thr, want)
	}
	if _, err := h.Threshold(nil, nil); err == nil {
		t.Fatal("nil training accepted")
	}
}

func TestUtilityOptimalBalancesErrors(t *testing.T) {
	tr := trainDist(3, 4000)
	attack := []float64{50, 100, 200}
	// With w = 0 only false positives matter: the optimal threshold
	// should have ~zero FP (at or above the max sample).
	thrFPOnly, err := (UtilityOptimal{W: 0}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	if fp := tr.TailProb(thrFPOnly); fp > 0.001 {
		t.Fatalf("w=0 threshold has FP %g", fp)
	}
	// With w = 1 only detection matters: threshold collapses low.
	thrFNOnly, err := (UtilityOptimal{W: 1}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	if thrFNOnly >= thrFPOnly {
		t.Fatalf("w=1 threshold %g not below w=0 threshold %g", thrFNOnly, thrFPOnly)
	}
	// Intermediate w sits in between (weakly).
	thrMid, err := (UtilityOptimal{W: 0.4}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	if thrMid < thrFNOnly-1e-9 || thrMid > thrFPOnly+1e-9 {
		t.Fatalf("w=0.4 threshold %g outside [%g, %g]", thrMid, thrFNOnly, thrFPOnly)
	}
}

func TestUtilityOptimalAchievesBestScore(t *testing.T) {
	// Exhaustively verify optimality over a fine threshold grid.
	tr := trainDist(5, 800)
	attack := []float64{30, 80}
	w := 0.4
	thr, err := (UtilityOptimal{W: w}).Threshold(tr, attack)
	if err != nil {
		t.Fatal(err)
	}
	score := func(T float64) float64 {
		fp := tr.TailProb(T)
		fn := (tr.CDF(T-30) + tr.CDF(T-80)) / 2
		return stats.Utility(fn, fp, w)
	}
	best := score(thr)
	for T := 0.0; T < tr.Max()+100; T += 0.5 {
		if s := score(T); s > best+1e-9 {
			t.Fatalf("grid threshold %g scores %g > chosen %g scoring %g", T, s, thr, best)
		}
	}
}

func TestUtilityOptimalErrors(t *testing.T) {
	tr := trainDist(6, 100)
	if _, err := (UtilityOptimal{W: 2}).Threshold(tr, []float64{10}); err == nil {
		t.Fatal("w > 1 accepted")
	}
	if _, err := (UtilityOptimal{W: 0.4}).Threshold(tr, nil); err == nil {
		t.Fatal("nil attack accepted")
	}
	if _, err := (UtilityOptimal{W: 0.4}).Threshold(nil, []float64{10}); err == nil {
		t.Fatal("nil training accepted")
	}
}

func TestFMeasureOptimal(t *testing.T) {
	tr := trainDist(7, 2000)
	thr, err := (FMeasureOptimal{}).Threshold(tr, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	// F-measure of the chosen threshold must beat a clearly bad one.
	f1 := func(T float64) float64 {
		fp := tr.TailProb(T)
		recall := 1 - tr.CDF(T-100)
		if recall+fp == 0 {
			return 0
		}
		p := recall / (recall + fp)
		return stats.HarmonicMean(p, recall)
	}
	if f1(thr) < f1(tr.Max()*10) {
		t.Fatalf("chosen threshold %g has F1 %g below trivial threshold", thr, f1(thr))
	}
	if f1(thr) < f1(0) {
		t.Fatalf("chosen threshold %g has F1 %g below zero threshold", thr, f1(thr))
	}
	if (FMeasureOptimal{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	tr := trainDist(8, 1000)
	attack := []float64{10, 40}
	for _, h := range []Heuristic{
		Percentile{Q: 0.99},
		MeanSigma{K: 3},
		UtilityOptimal{W: 0.4},
		FMeasureOptimal{},
	} {
		a, err := h.Threshold(tr, attack)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		b, err := h.Threshold(tr, attack)
		if err != nil || a != b {
			t.Fatalf("%s not deterministic: %g vs %g (%v)", h.Name(), a, b, err)
		}
	}
}
