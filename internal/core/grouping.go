package core

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// Grouping partitions a user population into configuration groups
// from a per-user tail statistic (the paper groups on the 99th
// percentile of the feature being configured, §5 "Grouping Users").
// Every user index must appear in exactly one returned group.
type Grouping interface {
	// Name identifies the grouping in reports and wire messages.
	Name() string
	// Groups partitions user indices {0..len(stat)-1}.
	Groups(stat []float64) ([][]int, error)
}

// Homogeneous is the monoculture policy: a single group containing
// every user, mirroring "the current model of operation for most IT
// departments" (§4).
type Homogeneous struct{}

// Name implements Grouping.
func (Homogeneous) Name() string { return "homogeneous" }

// Groups implements Grouping.
func (Homogeneous) Groups(stat []float64) ([][]int, error) {
	if len(stat) == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	all := make([]int, len(stat))
	for i := range all {
		all[i] = i
	}
	return [][]int{all}, nil
}

// FullDiversity gives every user their own group: each end host
// determines its own threshold from its own traffic (§4).
type FullDiversity struct{}

// Name implements Grouping.
func (FullDiversity) Name() string { return "full-diversity" }

// Groups implements Grouping.
func (FullDiversity) Groups(stat []float64) ([][]int, error) {
	if len(stat) == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	groups := make([][]int, len(stat))
	for i := range groups {
		groups[i] = []int{i}
	}
	return groups, nil
}

// PartialDiversity is the paper's partial-diversity heuristic (§5):
// split off the top HeavyFraction of users by the tail statistic
// (default 15%, "roughly the knee in the curve"), then subdivide the
// heavy side and the body side into equal-population quantile
// sub-groups. The paper's "8-partial" is Groups: 8 — 4 heavy
// sub-groups + 4 body sub-groups.
type PartialDiversity struct {
	// NumGroups is the total number of groups (>= 2). Half (rounded
	// up) subdivide the heavy users.
	NumGroups int
	// HeavyFraction is the top fraction treated as heavy; zero means
	// the paper's 0.15.
	HeavyFraction float64
}

// Name implements Grouping.
func (p PartialDiversity) Name() string { return fmt.Sprintf("%d-partial", p.NumGroups) }

// Groups implements Grouping.
func (p PartialDiversity) Groups(stat []float64) ([][]int, error) {
	if len(stat) == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	if p.NumGroups < 2 {
		return nil, fmt.Errorf("core: partial diversity requires >= 2 groups, got %d", p.NumGroups)
	}
	heavyFrac := p.HeavyFraction
	if heavyFrac == 0 {
		heavyFrac = 0.15
	}
	if heavyFrac < 0 || heavyFrac >= 1 {
		return nil, fmt.Errorf("core: heavy fraction %g outside (0, 1)", heavyFrac)
	}
	order := sortedIndices(stat)
	nHeavy := int(float64(len(order)) * heavyFrac)
	if nHeavy < 1 {
		nHeavy = 1
	}
	body := order[:len(order)-nHeavy]
	heavy := order[len(order)-nHeavy:]

	heavySub := p.NumGroups / 2
	if heavySub < 1 {
		heavySub = 1
	}
	bodySub := p.NumGroups - heavySub
	if bodySub < 1 {
		bodySub = 1
	}
	var groups [][]int
	groups = append(groups, quantileSplit(body, bodySub)...)
	groups = append(groups, quantileSplit(heavy, heavySub)...)
	return groups, nil
}

// quantileSplit splits an already-sorted index slice into k
// contiguous, nearly equal-population pieces (dropping empty pieces
// when k exceeds the population).
func quantileSplit(sorted []int, k int) [][]int {
	if len(sorted) == 0 {
		return nil
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	out := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * len(sorted) / k
		hi := (i + 1) * len(sorted) / k
		if hi > lo {
			out = append(out, append([]int(nil), sorted[lo:hi]...))
		}
	}
	return out
}

func sortedIndices(stat []float64) []int {
	order := make([]int, len(stat))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return stat[order[a]] < stat[order[b]] })
	return order
}

// KMeansGrouping clusters users on the tail statistic with k-means.
// The paper tried this and found "no natural separation"; it is
// provided both to reproduce that negative result (see the
// SilhouetteScore tests) and as an alternative grouping method.
type KMeansGrouping struct {
	// K is the number of clusters.
	K int
	// Seed drives the k-means++ initialization.
	Seed uint64
}

// Name implements Grouping.
func (g KMeansGrouping) Name() string { return fmt.Sprintf("kmeans(%d)", g.K) }

// Groups implements Grouping.
func (g KMeansGrouping) Groups(stat []float64) ([][]int, error) {
	if len(stat) == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	k := g.K
	if k > len(stat) {
		k = len(stat)
	}
	res, err := stats.KMeans1D(xrand.New(g.Seed), stat, k, 200)
	if err != nil {
		return nil, err
	}
	byCluster := make([][]int, k)
	for i, c := range res.Assign {
		byCluster[c] = append(byCluster[c], i)
	}
	var groups [][]int
	for _, grp := range byCluster {
		if len(grp) > 0 {
			groups = append(groups, grp)
		}
	}
	return groups, nil
}

// ValidatePartition checks that groups form an exact partition of
// {0..n-1}; policies call this to fail fast on a buggy Grouping.
func ValidatePartition(groups [][]int, n int) error {
	seen := make([]bool, n)
	count := 0
	for gi, grp := range groups {
		if len(grp) == 0 {
			return fmt.Errorf("core: group %d is empty", gi)
		}
		for _, u := range grp {
			if u < 0 || u >= n {
				return fmt.Errorf("core: group %d contains out-of-range user %d", gi, u)
			}
			if seen[u] {
				return fmt.Errorf("core: user %d appears in multiple groups", u)
			}
			seen[u] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("core: groups cover %d of %d users", count, n)
	}
	return nil
}
