package repro

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update-golden rewrites testdata/golden_seed1_20users.json from the
// current implementation. Only use it when an intentional behavior
// change is understood and documented; the whole point of the file is
// that analysis refactors cannot silently drift the paper's numbers.
var updateGolden = flag.Bool("update-golden", false, "rewrite the experiment golden file")

// goldenExperiments is the committed snapshot's shape: the three
// artifacts whose numbers EXPERIMENTS.md discusses most — per-user
// thresholds (Fig 1), the utility distribution (Fig 3a) and console
// false-alarm volumes (Table 3).
type goldenExperiments struct {
	Fig1   *Fig1Result
	Fig3a  *Fig3aResult
	Table3 *Table3Result
}

// TestGoldenExperimentOutputs pins Fig1/Fig3a/Table3 on a small
// reference population (20 users, seed 1, 2 weeks, 15-minute bins)
// to a committed JSON snapshot, byte for byte. Go's float64 JSON
// encoding is shortest-round-trip, so byte stability here means
// bit-identical results: any numeric drift introduced by an analysis
// refactor fails this test before it can silently change
// EXPERIMENTS.md's reported values.
func TestGoldenExperimentOutputs(t *testing.T) {
	ent, err := NewEnterprise(Options{Users: 20, Weeks: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperimentConfig()
	var g goldenExperiments
	if g.Fig1, err = Fig1(ent, cfg); err != nil {
		t.Fatal(err)
	}
	if g.Fig3a, err = Fig3a(ent, cfg); err != nil {
		t.Fatal(err)
	}
	if g.Table3, err = Table3(ent, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(&g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_seed1_20users.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Locate the first divergence so the failure is actionable
		// without diffing 20 KB by eye.
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		at := n
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				at = i
				break
			}
		}
		lo, hi := at-60, at+60
		if lo < 0 {
			lo = 0
		}
		context := func(b []byte) string {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return ""
			}
			return string(b[lo:h])
		}
		t.Fatalf("experiment outputs drifted from golden file at byte %d:\n  got:  …%s…\n  want: …%s…\n"+
			"If the change is intentional, regenerate with: go test -run TestGolden -update-golden .",
			at, context(got), context(want))
	}
}
