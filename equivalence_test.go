package repro

// Equivalence guard for the columnar-workspace refactor: the cached,
// parallel read path must produce results byte-identical to the seed
// implementation's uncached copy-then-sort computation. The reference
// implementations below reproduce the seed algorithms verbatim
// (fresh column copies, per-call sorts, serial Configure/Evaluate)
// against the raw matrices, bypassing the workspace entirely.

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
)

var (
	equivEntOnce sync.Once
	equivEnt     *Enterprise
)

func equivEnterprise(t *testing.T) *Enterprise {
	t.Helper()
	equivEntOnce.Do(func() {
		ent, err := NewEnterprise(Options{Users: 40, Weeks: 2, Seed: 7})
		if err != nil {
			panic(err)
		}
		ent.Materialize()
		equivEnt = ent
	})
	return equivEnt
}

// refTailStats is the seed TailStats: fresh column copy, fresh sort,
// per call.
func refTailStats(e *Enterprise, f features.Feature, week int, q float64) []float64 {
	out := make([]float64, e.Users())
	for u := range out {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(week)
		d, err := stats.NewEmpirical(m.ColumnSlice(f, lo, hi))
		if err != nil {
			panic(err)
		}
		out[u] = d.MustQuantile(q)
	}
	return out
}

// refTrainTest is the seed TrainTest: direct ColumnSlice copies.
func refTrainTest(e *Enterprise, f features.Feature, trainWeek, testWeek int) (train, test [][]float64) {
	train = make([][]float64, e.Users())
	test = make([][]float64, e.Users())
	for u := range train {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(trainWeek)
		train[u] = m.ColumnSlice(f, lo, hi)
		lo, hi = m.WeekRange(testWeek)
		test[u] = m.ColumnSlice(f, lo, hi)
	}
	return train, test
}

// refAttackSweep is the seed AttackSweep: full scan of every bin.
func refAttackSweep(e *Enterprise, f features.Feature, trainWeek, n int) []float64 {
	var max float64
	for u := 0; u < e.Users(); u++ {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(trainWeek)
		for b := lo; b < hi; b++ {
			if v := m.Rows[b][f]; v > max {
				max = v
			}
		}
	}
	if max < 2 {
		max = 2
	}
	return geomSpace(1, max, n)
}

func TestWorkspaceTailStatsMatchesSeed(t *testing.T) {
	e := equivEnterprise(t)
	for _, f := range features.All() {
		for _, q := range []float64{0.99, 0.999} {
			got, err := e.TailStats(f, 0, q)
			if err != nil {
				t.Fatal(err)
			}
			want := refTailStats(e, f, 0, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s q%g: cached tails diverge from seed computation", f, q)
			}
		}
	}
}

func TestWorkspaceSweepAndTrainTestMatchSeed(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	if got, want := e.AttackSweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints),
		refAttackSweep(e, cfg.Feature, cfg.TrainWeek, cfg.SweepPoints); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached sweep %v != seed %v", got, want)
	}
	gotTr, gotTe := e.TrainTest(cfg.Feature, cfg.TrainWeek, cfg.TestWeek)
	wantTr, wantTe := refTrainTest(e, cfg.Feature, cfg.TrainWeek, cfg.TestWeek)
	if !reflect.DeepEqual(gotTr, wantTr) || !reflect.DeepEqual(gotTe, wantTe) {
		t.Fatal("workspace train/test series diverge from seed computation")
	}
}

func TestFig1MatchesSeedComputation(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	got, err := Fig1(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed Fig1: serial loop over features, uncached tails.
	want := &Fig1Result{}
	for _, f := range features.All() {
		p99 := refTailStats(e, f, cfg.TrainWeek, 0.99)
		p999 := refTailStats(e, f, cfg.TrainWeek, 0.999)
		sort.Float64s(p99)
		sort.Float64s(p999)
		se := stats.MustEmpirical(p99)
		lo, hi := se.MustQuantile(0.02), se.MustQuantile(0.98)
		spread := 0.0
		if lo < 1 {
			lo = 1
		}
		if hi > lo {
			spread = math.Log10(hi / lo)
		}
		want.Panels = append(want.Panels, Fig1Feature{
			Feature: f, P99: p99, P999: p999, SpreadDecades: spread,
		})
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Fig1 diverges from the seed computation")
	}
	if got.String() != want.String() {
		t.Fatal("Fig1 rendering diverges from the seed computation")
	}
}

func TestFig3aMatchesSeedComputation(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	got, err := Fig3a(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed evalPolicies: per-call train/test/sweep derivation, serial
	// policies, per-user overlay slices, full EvaluatePolicy with raw
	// training series.
	train, test := refTrainTest(e, cfg.Feature, cfg.TrainWeek, cfg.TestWeek)
	sweep := refAttackSweep(e, cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
	overlay := make([][]float64, len(test))
	for u := range overlay {
		overlay[u] = sweepOverlay(len(test[u]), sweep)
	}
	h := core.UtilityOptimal{W: cfg.UtilityW}
	want := &Fig3aResult{}
	for _, pol := range Policies(h) {
		r, err := core.EvaluatePolicy(core.EvalInput{
			Train: train, Test: test, Attack: overlay,
			AttackMagnitudes: sweep, Policy: pol,
			Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want.PolicyNames = append(want.PolicyNames, pol.Name())
		u := r.Utilities(cfg.UtilityW)
		want.Utilities = append(want.Utilities, u)
		bp, err := stats.NewBoxplot(u)
		if err != nil {
			t.Fatal(err)
		}
		want.Boxplots = append(want.Boxplots, bp)
	}
	if !reflect.DeepEqual(got.Utilities, want.Utilities) {
		t.Fatal("Fig3a utilities diverge from the seed computation")
	}
	if !reflect.DeepEqual(got.Boxplots, want.Boxplots) {
		t.Fatal("Fig3a boxplots diverge from the seed computation")
	}
	if got.String() != want.String() {
		t.Fatal("Fig3a rendering diverges from the seed computation")
	}
}

func TestTable2MatchesSeedComputation(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	got, err := Table2(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed Table2: per-call distribution builds, serial Configure.
	refBest := func(f features.Feature, g core.Grouping) []int {
		train := make([]*stats.Empirical, e.Users())
		for u := range train {
			m := e.Matrix(u)
			lo, hi := m.WeekRange(cfg.TrainWeek)
			d, err := m.Distribution(f, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			train[u] = d
		}
		asn, err := core.Configure(train, core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return asn.BestUsers(10)
	}
	want := &Table2Result{
		FullUDP:    refBest(features.UDP, core.FullDiversity{}),
		FullTCP:    refBest(features.TCP, core.FullDiversity{}),
		PartialUDP: refBest(features.UDP, core.PartialDiversity{NumGroups: 8}),
		PartialTCP: refBest(features.TCP, core.PartialDiversity{NumGroups: 8}),
	}
	want.FullOverlap = core.Overlap(want.FullUDP, want.FullTCP)
	want.PartialOverlap = core.Overlap(want.PartialUDP, want.PartialTCP)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Table2 diverges from the seed computation:\n got %+v\nwant %+v", got, want)
	}
	if got.String() != want.String() {
		t.Fatal("Table2 rendering diverges from the seed computation")
	}
}
